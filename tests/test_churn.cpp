// Churn subsystem: Cluster epoch/observer mechanics, ChurnProcess kinds
// (scripted, MTBF/MTTR, flapping), injector scheduling, determinism of
// churned runs, mid-task failure + retry accounting, and the eager plan
// cache invalidation path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hidp_strategy.hpp"
#include "runtime/churn.hpp"
#include "runtime/metrics.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

using dnn::zoo::ModelId;

std::vector<platform::NodeModel> uniform_cluster(std::size_t n) {
  std::vector<platform::NodeModel> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(platform::make_device("Jetson TX2"));
  return nodes;
}

/// Plans one compute task on `preferred` when that node is up, else on the
/// leader — a deterministic strategy whose replans visibly move off dead
/// nodes.
class PreferredNodeStrategy : public IStrategy {
 public:
  PreferredNodeStrategy(std::size_t preferred, double seconds)
      : preferred_(preferred), seconds_(seconds) {}
  std::string name() const override { return "PreferredNode"; }
  PlanResult plan(const PlanRequest& request) override {
    const auto& available = request.snapshot.available;
    const bool preferred_up = preferred_ < available.size() && available[preferred_];
    Plan plan;
    plan.strategy = name();
    plan.leader = request.snapshot.leader;
    PlanTask task;
    task.kind = PlanTask::Kind::kCompute;
    task.node = preferred_up ? preferred_ : request.snapshot.leader;
    task.proc = 0;
    task.seconds = seconds_;
    task.flops = 1e9;
    plan.tasks.push_back(task);
    plan.nodes_used = 1;
    return PlanResult{std::move(plan), false};
  }

 private:
  std::size_t preferred_;
  double seconds_;
};

TEST(ClusterChurn, EpochBumpsOnEffectiveChangesOnly) {
  Cluster cluster(uniform_cluster(2));
  EXPECT_EQ(cluster.membership_epoch(), 0u);
  cluster.set_node_available(1, true);  // already up: no-op
  EXPECT_EQ(cluster.membership_epoch(), 0u);
  cluster.set_node_available(1, false);
  EXPECT_EQ(cluster.membership_epoch(), 1u);
  EXPECT_FALSE(cluster.node_available(1));
  cluster.set_node_available(1, false);  // idempotent
  EXPECT_EQ(cluster.membership_epoch(), 1u);
  cluster.set_node_available(1, true);
  EXPECT_EQ(cluster.membership_epoch(), 2u);
  cluster.set_dvfs_scale(0, 1.0);  // already at baseline: no-op
  EXPECT_EQ(cluster.membership_epoch(), 2u);
  cluster.set_dvfs_scale(0, 0.5);
  EXPECT_EQ(cluster.membership_epoch(), 3u);
  EXPECT_THROW(cluster.set_node_available(7, false), std::out_of_range);
  EXPECT_THROW(cluster.set_dvfs_scale(0, 0.0), std::invalid_argument);
}

TEST(ClusterChurn, DvfsScalesFrequenciesAbsolutelyAndRestores) {
  Cluster cluster(uniform_cluster(1));
  std::vector<double> base;
  for (const auto& proc : cluster.nodes()[0].processors()) base.push_back(proc.freq_ghz());
  cluster.set_dvfs_scale(0, 0.5);
  EXPECT_DOUBLE_EQ(cluster.dvfs_scale(0), 0.5);
  for (std::size_t p = 0; p < base.size(); ++p) {
    EXPECT_DOUBLE_EQ(cluster.nodes()[0].processor(p).freq_ghz(), base[p] * 0.5);
  }
  // Absolute, not cumulative: 0.5 twice stays 0.5x; 1.0 restores exactly.
  cluster.set_dvfs_scale(0, 0.5);
  EXPECT_DOUBLE_EQ(cluster.nodes()[0].processor(0).freq_ghz(), base[0] * 0.5);
  cluster.set_dvfs_scale(0, 1.0);
  for (std::size_t p = 0; p < base.size(); ++p) {
    EXPECT_DOUBLE_EQ(cluster.nodes()[0].processor(p).freq_ghz(), base[p]);
  }
}

TEST(ClusterChurn, ObserversFireInRegistrationOrderWithEventDetails) {
  Cluster cluster(uniform_cluster(2));
  std::vector<int> order;
  NodeEvent seen{};
  const std::size_t a = cluster.add_observer([&](const NodeEvent& e) {
    order.push_back(1);
    seen = e;
  });
  cluster.add_observer([&](const NodeEvent&) { order.push_back(2); });
  cluster.set_node_available(1, false);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(seen.kind, NodeEvent::Kind::kDown);
  EXPECT_EQ(seen.node, 1u);
  EXPECT_EQ(seen.epoch, 1u);
  cluster.remove_observer(a);
  order.clear();
  cluster.set_node_available(1, true);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 2);
}

TEST(ChurnProcesses, ScriptedReplaysSortedTrace) {
  ScriptedChurn churn({
      {0.5, 1, ChurnEvent::Action::kRepair, 1.0},
      {0.2, 0, ChurnEvent::Action::kFail, 1.0},
      {0.3, 1, ChurnEvent::Action::kFail, 1.0},
  });
  auto e1 = churn.next(0.0);
  auto e2 = churn.next(0.0);
  auto e3 = churn.next(0.0);
  ASSERT_TRUE(e1 && e2 && e3);
  EXPECT_DOUBLE_EQ(e1->time_s, 0.2);
  EXPECT_DOUBLE_EQ(e2->time_s, 0.3);
  EXPECT_DOUBLE_EQ(e3->time_s, 0.5);
  EXPECT_FALSE(churn.next(0.0).has_value());
}

TEST(ChurnProcesses, FlappingAlternatesFailRepair) {
  FlappingChurn::Options options;
  options.node = 2;
  options.start_s = 1.0;
  options.down_s = 0.2;
  options.up_s = 0.3;
  options.cycles = 2;
  FlappingChurn churn(options);
  const double expect_times[] = {1.0, 1.2, 1.5, 1.7};
  for (int i = 0; i < 4; ++i) {
    auto event = churn.next(0.0);
    ASSERT_TRUE(event.has_value()) << i;
    EXPECT_DOUBLE_EQ(event->time_s, expect_times[i]);
    EXPECT_EQ(event->node, 2u);
    EXPECT_EQ(event->action,
              i % 2 == 0 ? ChurnEvent::Action::kFail : ChurnEvent::Action::kRepair);
  }
  EXPECT_FALSE(churn.next(0.0).has_value());
}

TEST(ChurnProcesses, MtbfIsDeterministicPerSeedAndHorizonBounded) {
  MtbfChurn::Options options;
  options.mtbf_s = 0.3;
  options.mttr_s = 0.2;
  options.horizon_s = 5.0;
  options.seed = 42;
  options.nodes = {0, 2};
  const auto drain = [](MtbfChurn& churn) {
    std::vector<ChurnEvent> events;
    while (auto event = churn.next(0.0)) events.push_back(*event);
    return events;
  };
  MtbfChurn a(options), b(options);
  const auto ea = drain(a);
  const auto eb = drain(b);
  ASSERT_FALSE(ea.empty());
  ASSERT_EQ(ea.size(), eb.size());
  double last = 0.0;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea[i].time_s, eb[i].time_s);
    EXPECT_EQ(ea[i].node, eb[i].node);
    EXPECT_EQ(ea[i].action, eb[i].action);
    EXPECT_GE(ea[i].time_s, last);  // time-sorted
    EXPECT_LT(ea[i].time_s, options.horizon_s);
    last = ea[i].time_s;
  }
  options.seed = 43;
  MtbfChurn c(options);
  const auto ec = drain(c);
  bool differs = ec.size() != ea.size();
  for (std::size_t i = 0; !differs && i < ec.size(); ++i) {
    differs = ec[i].time_s != ea[i].time_s || ec[i].node != ea[i].node;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same event stream";
}

TEST(ChurnInjector, AppliesEventsAtScheduledTimes) {
  Cluster cluster(uniform_cluster(2));
  ScriptedChurn trace({
      {0.25, 1, ChurnEvent::Action::kFail, 1.0},
      {0.5, 0, ChurnEvent::Action::kDvfs, 0.5},
      {0.75, 1, ChurnEvent::Action::kRepair, 1.0},
  });
  ChurnInjector injector(cluster, trace);
  injector.start();
  std::vector<std::pair<double, std::uint64_t>> observed;  // (time, epoch)
  cluster.add_observer([&](const NodeEvent& event) {
    observed.emplace_back(event.time_s, event.epoch);
  });
  cluster.simulator().run();
  EXPECT_EQ(injector.applied(), 3u);
  EXPECT_EQ(cluster.membership_epoch(), 3u);
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_DOUBLE_EQ(observed[0].first, 0.25);
  EXPECT_DOUBLE_EQ(observed[1].first, 0.5);
  EXPECT_DOUBLE_EQ(observed[2].first, 0.75);
  EXPECT_TRUE(cluster.node_available(1));
  EXPECT_DOUBLE_EQ(cluster.dvfs_scale(0), 0.5);
}

TEST(ChurnFailure, MidTaskDeathRetriesOnSurvivorsThenCompletes) {
  Cluster cluster(uniform_cluster(2));
  PreferredNodeStrategy strategy(/*preferred=*/1, /*seconds=*/1.0);
  ServiceOptions options;
  options.max_retries = 1;
  InferenceService service(cluster, strategy, /*leader=*/0, options);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  ScriptedChurn trace({{0.5, 1, ChurnEvent::Action::kFail, 1.0}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();
  ASSERT_EQ(records.size(), 1u);
  // Node 1 died at 0.5 mid-task; the retry replanned onto the leader at
  // that instant and ran 1.0 s there.
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 1.5);
  EXPECT_EQ(service.stats().retries, 1u);
  EXPECT_EQ(service.stats().completed, 1u);
  EXPECT_EQ(service.stats().failed, 0u);
}

TEST(ChurnFailure, RetriesExhaustedTurnsTerminalFailedWithBalancedStats) {
  Cluster cluster(uniform_cluster(2));
  PreferredNodeStrategy strategy(1, 1.0);
  ServiceOptions options;
  options.max_retries = 0;  // no second chance
  InferenceService service(cluster, strategy, 0, options);
  ModelSet models;
  RequestSpec interactive{0, &models.graph(ModelId::kEfficientNetB0), 0.0,
                          QosClass::kInteractive};
  service.submit(interactive);
  service.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 2.0});
  ScriptedChurn trace({{0.5, 1, ChurnEvent::Action::kFail, 1.0}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();
  ASSERT_EQ(records.size(), 2u);
  // Request 0 dies at the failure instant with its partial FLOPs dropped.
  EXPECT_EQ(records[0].outcome, RequestOutcome::kFailed);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.5);
  EXPECT_DOUBLE_EQ(records[0].flops, 0.0);
  // Request 1 arrives after the death and plans around it (leader node).
  EXPECT_EQ(records[1].outcome, RequestOutcome::kCompleted);
  // Accounting balances per class: submitted = terminal outcomes.
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.retries, 0u);
  const QosClassStats& inter = stats.of(QosClass::kInteractive);
  EXPECT_EQ(inter.submitted, 1u);
  EXPECT_EQ(inter.failed, 1u);
  EXPECT_EQ(inter.completed + inter.rejected + inter.dropped + inter.deadline_misses, 0u);
  const QosClassStats& standard = stats.of(QosClass::kStandard);
  EXPECT_EQ(standard.submitted, 1u);
  EXPECT_EQ(standard.completed, 1u);
  const StreamMetrics metrics = summarize_run(records, cluster);
  EXPECT_EQ(metrics.failed, 1);
  EXPECT_EQ(metrics.completed, 1);
}

TEST(ChurnFailure, ExpiredRequestDroppedInsteadOfRetriedAfterMidTaskDeath) {
  // drop_expired_pending: a churn-killed request whose deadline passed
  // while it executed is could-only-miss work — no retry, terminal
  // kDropped at the failure instant.
  Cluster cluster(uniform_cluster(2));
  PreferredNodeStrategy strategy(1, 1.0);
  ServiceOptions options;
  options.max_retries = 3;
  options.drop_expired_pending = true;
  InferenceService service(cluster, strategy, 0, options);
  ModelSet models;
  RequestSpec doomed{0, &models.graph(ModelId::kEfficientNetB0), 0.0};
  doomed.deadline_s = 0.4;  // passes mid-execution
  service.submit(doomed);
  ScriptedChurn trace({{0.5, 1, ChurnEvent::Action::kFail, 1.0}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kDropped);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.5);
  EXPECT_EQ(service.stats().dropped, 1u);
  EXPECT_EQ(service.stats().retries, 0u);
  EXPECT_EQ(service.stats().failed, 0u);
}

TEST(ChurnFailure, DeadLeaderParksPendingUntilRepair) {
  Cluster cluster(uniform_cluster(2));
  PreferredNodeStrategy strategy(0, 0.2);  // plans on the leader itself
  ServiceOptions options;
  options.max_in_flight = 1;
  InferenceService service(cluster, strategy, 0, options);
  ModelSet models;
  // Leader down before the requests arrive; repair at t=1.0.
  ScriptedChurn trace({
      {0.05, 0, ChurnEvent::Action::kFail, 1.0},
      {1.0, 0, ChurnEvent::Action::kRepair, 1.0},
  });
  ChurnInjector injector(cluster, trace);
  injector.start();
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.1});
  service.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 0.2});
  const auto records = service.run();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
    // Nothing dispatched while the shard was dead: both ran post-repair.
    EXPECT_GE(record.dispatch_s, 1.0);
  }
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST(ChurnFailure, DeadLeaderWithoutRepairStrandsAsFailed) {
  Cluster cluster(uniform_cluster(2));
  PreferredNodeStrategy strategy(0, 0.2);
  ServiceOptions options;
  options.max_in_flight = 1;
  InferenceService service(cluster, strategy, 0, options);
  ModelSet models;
  ScriptedChurn trace({{0.05, 0, ChurnEvent::Action::kFail, 1.0}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.1});
  service.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 0.2});
  const auto records = service.run();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kFailed);
    EXPECT_DOUBLE_EQ(record.flops, 0.0);
  }
  EXPECT_EQ(service.stats().failed, 2u);
  EXPECT_EQ(service.pending(), 0u);
}

TEST(ChurnDeterminism, IdenticalSeedsProduceIdenticalChurnedRuns) {
  // Full stack under MTBF/MTTR churn: HiDP planning, Poisson arrivals,
  // retries and failures — two runs with the same seeds must agree on
  // every record field, including failure traces and terminal outcomes.
  ModelSet models;
  const auto run_once = [&]() {
    Cluster cluster(platform::paper_cluster());
    core::HidpStrategy hidp;
    ServiceOptions options;
    options.max_in_flight = 2;
    InferenceService service(cluster, hidp, /*leader=*/1, options);
    PoissonArrivals::Options poisson;
    poisson.rate_hz = 30.0;
    poisson.count = 40;
    poisson.seed = 9;
    PoissonArrivals arrivals(models, {ModelId::kEfficientNetB0, ModelId::kResNet152},
                             poisson);
    service.attach(&arrivals);
    MtbfChurn::Options churn_options;
    churn_options.mtbf_s = 0.4;
    churn_options.mttr_s = 0.3;
    churn_options.horizon_s = 2.0;
    churn_options.seed = 5;
    churn_options.nodes = {0, 3, 4};  // leader 1 stays up
    MtbfChurn churn(churn_options);
    ChurnInjector injector(cluster, churn);
    injector.start();
    auto records = service.run();
    return std::make_pair(std::move(records), service.stats());
  };
  const auto [first, first_stats] = run_once();
  const auto [second, second_stats] = run_once();
  ASSERT_EQ(first.size(), 40u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].outcome, second[i].outcome);
    EXPECT_DOUBLE_EQ(first[i].arrival_s, second[i].arrival_s);
    EXPECT_DOUBLE_EQ(first[i].dispatch_s, second[i].dispatch_s);
    EXPECT_DOUBLE_EQ(first[i].finish_s, second[i].finish_s);
    EXPECT_DOUBLE_EQ(first[i].flops, second[i].flops);
  }
  EXPECT_EQ(first_stats.completed, second_stats.completed);
  EXPECT_EQ(first_stats.failed, second_stats.failed);
  EXPECT_EQ(first_stats.retries, second_stats.retries);
}

TEST(ChurnPlanCache, DvfsEventInvalidatesEagerly) {
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy hidp;
  InferenceService service(cluster, hidp, 1);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kVgg19), 0.0});
  service.run();
  const std::uint64_t epoch_before = hidp.plan_cache_epoch();
  // The DVFS event propagates through the service's observer to the
  // strategy at the event instant — no plan() call needed to notice.
  cluster.set_dvfs_scale(0, 0.5);
  EXPECT_GT(hidp.plan_cache_epoch(), epoch_before);
  // Availability churn keys the cache instead of flushing it.
  const std::uint64_t epoch_after_dvfs = hidp.plan_cache_epoch();
  cluster.set_node_available(3, false);
  EXPECT_EQ(hidp.plan_cache_epoch(), epoch_after_dvfs);
}

/// Leader death with re-election on: the surviving scope member with the
/// highest aggregate peak rate is promoted, and requests arriving after the
/// death plan and complete under the new leader instead of parking.
TEST(LeaderReelection, PromotesHighestRateSurvivorAndKeepsServing) {
  std::vector<platform::NodeModel> nodes;
  nodes.push_back(platform::make_device("Jetson TX2"));       // leader
  nodes.push_back(platform::make_device("Jetson TX2"));
  nodes.push_back(platform::make_device("Jetson Orin NX"));   // fastest survivor
  Cluster cluster(std::move(nodes));
  PreferredNodeStrategy strategy(/*preferred=*/1, /*seconds=*/0.5);
  ServiceOptions options;
  options.leader_reelection = true;
  InferenceService service(cluster, strategy, /*leader=*/0, options);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  service.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 2.0});
  // The leader dies between the two requests (nothing in flight on it).
  ScriptedChurn trace({{1.0, 0, ChurnEvent::Action::kFail, 1.0}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(records[1].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(service.stats().leader_reelections, 1u);
  EXPECT_EQ(service.stats().failed, 0u);
  // The Orin NX outguns the surviving TX2: it becomes the anchor.
  EXPECT_EQ(service.engine().leader(), 2u);
}

/// Same scenario with the flag off (the default): the shard is dead once
/// its leader is, so the post-death request parks and finalizes kFailed —
/// the pre-PR behaviour, unchanged.
TEST(LeaderReelection, OffByDefaultKeepsDeadShardSemantics) {
  std::vector<platform::NodeModel> nodes;
  nodes.push_back(platform::make_device("Jetson TX2"));
  nodes.push_back(platform::make_device("Jetson TX2"));
  nodes.push_back(platform::make_device("Jetson Orin NX"));
  Cluster cluster(std::move(nodes));
  PreferredNodeStrategy strategy(1, 0.5);
  InferenceService service(cluster, strategy, 0);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  service.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 2.0});
  ScriptedChurn trace({{1.0, 0, ChurnEvent::Action::kFail, 1.0}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(records[1].outcome, RequestOutcome::kFailed);
  EXPECT_EQ(service.stats().leader_reelections, 0u);
  EXPECT_EQ(service.engine().leader(), 0u);
}

/// When every scope member is gone there is nobody to promote: re-election
/// declines silently and the parked work fails terminally, balanced.
TEST(LeaderReelection, NoSurvivorLeavesTheShardParked) {
  Cluster cluster(uniform_cluster(2));
  PreferredNodeStrategy strategy(1, 0.5);
  ServiceOptions options;
  options.leader_reelection = true;
  InferenceService service(cluster, strategy, 0, options);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 2.0});
  ScriptedChurn trace({
      {0.5, 0, ChurnEvent::Action::kFail, 1.0},  // leader dies: 1 promoted
      {1.0, 1, ChurnEvent::Action::kFail, 1.0},  // new leader dies: nobody left
  });
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();

  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kFailed);
  EXPECT_EQ(service.stats().leader_reelections, 1u);
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.stats().completed, 0u);
}

}  // namespace
}  // namespace hidp::runtime
