// The paper's accuracy claim (§IV-B): partitioned execution must produce
// the same predictions as whole-model execution. These tests verify
// bit-level / tolerance-level equivalence of data-partitioned runs across
// synthetic CNNs and the real zoo architectures at reduced resolution.
#include <gtest/gtest.h>

#include "dnn/zoo/zoo.hpp"
#include "tensor/slicing.hpp"
#include "util/rng.hpp"

namespace hidp::tensor {
namespace {

using dnn::Activation;
using dnn::DnnGraph;

DnnGraph mixed_graph() {
  DnnGraph g("mixed");
  int x = g.add_input(3, 33, 33);
  x = g.conv(x, 8, 3, 1, true, Activation::kRelu, "c1");
  int a = g.conv(x, 8, 3, 1, true, Activation::kNone, "c2");
  x = g.add({a, x}, Activation::kRelu, "res");
  int b1 = g.conv(x, 8, 1, 1, true, Activation::kRelu);
  int b2 = g.conv(x, 8, 5, 1, true, Activation::kRelu);
  x = g.concat({b1, b2});
  x = g.max_pool(x, 2, 2, false);
  x = g.squeeze_excite(x, 4);
  x = g.conv(x, 16, 3, 2, true, Activation::kSwish);
  x = g.global_avg_pool(x);
  x = g.dense(x, 10);
  g.softmax(x);
  return g;
}

TEST(Equivalence, MixedGraphBitExactAcrossSigmas) {
  const DnnGraph g = mixed_graph();
  ReferenceExecutor ref(g, 5);
  PartitionedExecutor part(ref);
  util::Rng rng(99);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  const Tensor whole = ref.run(input);
  for (int sigma : {2, 3, 4, 5, 8}) {
    const Tensor sliced = part.run(input, sigma);
    EXPECT_TRUE(whole.allclose(sliced, 1e-5, 1e-4)) << "sigma=" << sigma;
    // Everything except the SE all-reduce is bit-exact; with double
    // accumulation the reduction is too in practice.
    EXPECT_LT(whole.max_abs_diff(sliced), 1e-6) << "sigma=" << sigma;
  }
}

TEST(Equivalence, SigmaOneFallsBackToReference) {
  const DnnGraph g = mixed_graph();
  ReferenceExecutor ref(g, 5);
  PartitionedExecutor part(ref);
  util::Rng rng(1);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  EXPECT_DOUBLE_EQ(ref.run(input).max_abs_diff(part.run(input, 1)), 0.0);
}

TEST(Equivalence, UnevenBandsStillExact) {
  const DnnGraph g = mixed_graph();
  ReferenceExecutor ref(g, 5);
  PartitionedExecutor part(ref);
  util::Rng rng(7);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  const Tensor whole = ref.run(input);
  const int target_rows = g.layer(dnn::data_partition_point(g) - 1).output.height;
  // Deliberately skewed bands (1 row / rest split 1:3).
  std::vector<dnn::RowRange> bands{{0, 1},
                                   {1, 1 + (target_rows - 1) / 4},
                                   {1 + (target_rows - 1) / 4, target_rows}};
  const Tensor sliced = part.run_with_bands(input, bands);
  EXPECT_LT(whole.max_abs_diff(sliced), 1e-6);
}

TEST(Equivalence, RejectsNonCoveringBands) {
  const DnnGraph g = mixed_graph();
  ReferenceExecutor ref(g, 5);
  PartitionedExecutor part(ref);
  util::Rng rng(7);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  EXPECT_THROW(part.run_with_bands(input, {{0, 3}, {3, 5}}), std::invalid_argument);
  EXPECT_THROW(part.run_with_bands(input, {{1, 4}}), std::invalid_argument);
}

TEST(Equivalence, OverlapGrowsWithSigma) {
  const DnnGraph g = mixed_graph();
  ReferenceExecutor ref(g, 5);
  PartitionedExecutor part(ref);
  util::Rng rng(3);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  part.run(input, 2);
  const double overlap2 = part.last_report().overlap_fraction();
  part.run(input, 4);
  const double overlap4 = part.last_report().overlap_fraction();
  EXPECT_GT(overlap4, overlap2);
  EXPECT_GT(overlap2, 0.0);  // halo recompute is never free
}

// Property sweep: random conv/pool/residual stacks stay equivalent.
class RandomStackEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomStackEquivalence, SlicedMatchesWhole) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 77 + 1));
  DnnGraph g("rand");
  int x = g.add_input(3, 24 + GetParam() % 3, 24 + GetParam() % 3);
  const int depth = 3 + GetParam() % 3;
  for (int i = 0; i < depth; ++i) {
    const double pick = rng.uniform();
    const int channels = g.layer(x).output.channels;
    if (pick < 0.5) {
      const int kernel = 1 + 2 * static_cast<int>(rng.uniform_int(0, 2));
      x = g.conv(x, 4 + static_cast<int>(rng.uniform_int(0, 4)), kernel,
                 rng.uniform() < 0.25 ? 2 : 1, true, Activation::kRelu);
    } else if (pick < 0.65 && g.layer(x).output.height >= 4) {
      x = g.max_pool(x, 2, 2, false);
    } else if (pick < 0.8) {
      const int a = g.conv(x, channels, 3, 1, true, Activation::kNone);
      x = g.add({a, x}, Activation::kRelu);
    } else {
      x = g.squeeze_excite(x, std::max(1, channels / 4));
    }
  }
  x = g.global_avg_pool(x);
  x = g.dense(x, 7);
  g.softmax(x);

  ReferenceExecutor ref(g, static_cast<std::uint64_t>(GetParam()));
  PartitionedExecutor part(ref);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  const Tensor whole = ref.run(input);
  const int sigma = 2 + GetParam() % 3;
  const Tensor sliced = part.run(input, sigma);
  EXPECT_TRUE(whole.allclose(sliced, 1e-5, 1e-4))
      << "param=" << GetParam() << " maxdiff=" << whole.max_abs_diff(sliced);
}

INSTANTIATE_TEST_SUITE_P(RandomStacks, RandomStackEquivalence, ::testing::Range(0, 10));

// The real zoo architectures at reduced resolution (full-res reference
// convolutions would take minutes; the structure is what matters).
TEST(Equivalence, EfficientNetB0WithSqueezeExcite) {
  const DnnGraph g = dnn::zoo::build_efficientnet_b0(64, 10);
  ReferenceExecutor ref(g, 11);
  PartitionedExecutor part(ref);
  util::Rng rng(13);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  const Tensor whole = ref.run(input);
  const Tensor sliced = part.run(input, 3);
  EXPECT_TRUE(whole.allclose(sliced, 1e-5, 1e-4));
  EXPECT_EQ(part.last_report().split_layer, dnn::data_partition_point(g));
}

TEST(Equivalence, Vgg19ReducedResolution) {
  const DnnGraph g = dnn::zoo::build_vgg19(48, 10);
  ReferenceExecutor ref(g, 17);
  PartitionedExecutor part(ref);
  util::Rng rng(19);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  const Tensor whole = ref.run(input);
  const Tensor sliced = part.run(input, 2);
  EXPECT_LT(whole.max_abs_diff(sliced), 1e-6);
}

TEST(Equivalence, ResNetStyleStridedResiduals) {
  // conv7/2 + pool + two bottlenecks with projection, then head.
  DnnGraph g("resnet-ish");
  int x = g.add_input(3, 40, 40);
  x = g.conv(x, 8, 7, 2, true, Activation::kRelu);
  x = g.max_pool(x, 3, 2, true);
  for (int stride : {1, 2}) {
    const int c1 = g.conv(x, 4, 1, 1, true, Activation::kRelu);
    const int c2 = g.conv(c1, 4, 3, stride, true, Activation::kRelu);
    const int c3 = g.conv(c2, 16, 1, 1, true, Activation::kNone);
    const int proj = g.conv(x, 16, 1, stride, true, Activation::kNone);
    x = g.add({c3, proj}, Activation::kRelu);
  }
  x = g.global_avg_pool(x);
  x = g.dense(x, 5);
  g.softmax(x);

  ReferenceExecutor ref(g, 23);
  PartitionedExecutor part(ref);
  util::Rng rng(29);
  const Tensor input = Tensor::random(g.input_shape(), rng);
  const Tensor whole = ref.run(input);
  for (int sigma : {2, 4}) {
    EXPECT_LT(whole.max_abs_diff(part.run(input, sigma)), 1e-6) << "sigma=" << sigma;
  }
}

TEST(Equivalence, TopPredictionUnchanged) {
  // The actual accuracy statement: argmax (Top-1) identical.
  const DnnGraph g = dnn::zoo::build_efficientnet_b0(64, 10);
  ReferenceExecutor ref(g, 31);
  PartitionedExecutor part(ref);
  util::Rng rng(37);
  for (int trial = 0; trial < 3; ++trial) {
    const Tensor input = Tensor::random(g.input_shape(), rng);
    const Tensor whole = ref.run(input);
    const Tensor sliced = part.run(input, 2 + trial);
    int argmax_whole = 0, argmax_sliced = 0;
    for (int c = 1; c < whole.channels(); ++c) {
      if (whole.at(c, 0, 0) > whole.at(argmax_whole, 0, 0)) argmax_whole = c;
      if (sliced.at(c, 0, 0) > sliced.at(argmax_sliced, 0, 0)) argmax_sliced = c;
    }
    EXPECT_EQ(argmax_whole, argmax_sliced);
  }
}

}  // namespace
}  // namespace hidp::tensor
