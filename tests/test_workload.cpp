// Workload generators: streams, staggered arrivals, paper mixes.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

using dnn::zoo::ModelId;

TEST(ModelSet, HoldsAllFourModels) {
  const ModelSet models;
  EXPECT_EQ(models.ids().size(), 4u);
  for (const ModelId id : models.ids()) {
    EXPECT_FALSE(models.graph(id).empty());
    EXPECT_EQ(models.graph(id).name(), dnn::zoo::model_name(id));
  }
}

TEST(PeriodicStream, SpacingAndIds) {
  const ModelSet models;
  const auto reqs = periodic_stream(models.graph(ModelId::kVgg19), 5, 0.5, 1.0, 10);
  ASSERT_EQ(reqs.size(), 5u);
  EXPECT_EQ(reqs[0].id, 10);
  EXPECT_DOUBLE_EQ(reqs[0].arrival_s, 1.0);
  EXPECT_DOUBLE_EQ(reqs[4].arrival_s, 3.0);
  for (const auto& r : reqs) EXPECT_EQ(r.model, &models.graph(ModelId::kVgg19));
}

TEST(StaggeredArrivals, PaperFig6Order) {
  const ModelSet models;
  const auto order = dnn::zoo::all_models();  // EffNet, Inception, ResNet, VGG
  const auto reqs = staggered_arrivals(models, order, 0.5);
  ASSERT_EQ(reqs.size(), 4u);
  EXPECT_DOUBLE_EQ(reqs[0].arrival_s, 0.0);
  EXPECT_DOUBLE_EQ(reqs[3].arrival_s, 1.5);  // paper: all four running at t=1.5s
  EXPECT_EQ(reqs[0].model->name(), "EfficientNetB0");
  EXPECT_EQ(reqs[3].model->name(), "VGG-19");
}

TEST(MixedStream, AlternatesAndJitters) {
  const ModelSet models;
  util::Rng rng(3);
  const std::vector<ModelId> mix{ModelId::kEfficientNetB0, ModelId::kResNet152};
  const auto reqs = mixed_stream(models, mix, 6, 1.0, rng);
  ASSERT_EQ(reqs.size(), 6u);
  EXPECT_EQ(reqs[0].model->name(), "EfficientNetB0");
  EXPECT_EQ(reqs[1].model->name(), "ResNet152");
  EXPECT_EQ(reqs[2].model->name(), "EfficientNetB0");
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    const double gap = reqs[i].arrival_s - reqs[i - 1].arrival_s;
    EXPECT_GE(gap, 0.75 - 1e-9);
    EXPECT_LE(gap, 1.25 + 1e-9);
  }
}

TEST(MixedStream, DeterministicPerSeed) {
  const ModelSet models;
  util::Rng a(5), b(5);
  const std::vector<ModelId> mix{ModelId::kVgg19, ModelId::kInceptionV3};
  const auto ra = mixed_stream(models, mix, 4, 0.5, a);
  const auto rb = mixed_stream(models, mix, 4, 0.5, b);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].arrival_s, rb[i].arrival_s);
  }
}

TEST(MixedStream, TinyIntervalStaysSortedAndNonNegative) {
  // Regression: with a tiny interval the jittered gap can round to (or
  // below) zero; arrivals must stay non-negative and sorted regardless.
  const ModelSet models;
  util::Rng rng(11);
  const std::vector<ModelId> mix{ModelId::kEfficientNetB0, ModelId::kVgg19};
  for (const double interval : {0.0, 1e-300, 1e-9}) {
    util::Rng local(rng.next_u64());
    const auto reqs = mixed_stream(models, mix, 500, interval, local);
    ASSERT_EQ(reqs.size(), 500u);
    EXPECT_GE(reqs.front().arrival_s, 0.0);
    for (std::size_t i = 1; i < reqs.size(); ++i) {
      EXPECT_GE(reqs[i].arrival_s, reqs[i - 1].arrival_s) << "interval " << interval;
    }
  }
}

TEST(MixedStream, NegativeIntervalThrows) {
  const ModelSet models;
  util::Rng rng(3);
  const std::vector<ModelId> mix{ModelId::kEfficientNetB0};
  EXPECT_THROW(mixed_stream(models, mix, 4, -0.5, rng), std::invalid_argument);
}

TEST(PaperMixes, FourPairsFourTriples) {
  const auto mixes = paper_mixes();
  ASSERT_EQ(mixes.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(mixes[i].size(), 2u) << "Mix " << i + 1;
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(mixes[i].size(), 3u) << "Mix " << i + 1;
}

TEST(PaperMixes, NoDuplicateModelsWithinMix) {
  for (const auto& mix : paper_mixes()) {
    for (std::size_t i = 0; i < mix.size(); ++i) {
      for (std::size_t j = i + 1; j < mix.size(); ++j) EXPECT_NE(mix[i], mix[j]);
    }
  }
}

TEST(StaggeredStreams, ProgressiveOverlap) {
  const ModelSet models;
  const auto reqs = staggered_streams(models, dnn::zoo::all_models(), 0.5, 3, 0.5);
  ASSERT_EQ(reqs.size(), 12u);
  // Sorted by arrival; first is EffNet at t=0, last arrival at 1.5+2*0.5.
  EXPECT_DOUBLE_EQ(reqs.front().arrival_s, 0.0);
  EXPECT_DOUBLE_EQ(reqs.back().arrival_s, 2.5);
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].arrival_s, reqs[i - 1].arrival_s);
  }
  // All ids unique.
  std::set<int> ids;
  for (const auto& r : reqs) ids.insert(r.id);
  EXPECT_EQ(ids.size(), reqs.size());
}

}  // namespace
}  // namespace hidp::runtime
