// Cluster cost model: candidates, profiles, boundary bytes, policies, Psi.
#include <gtest/gtest.h>

#include "dnn/zoo/zoo.hpp"
#include "partition/cost_model.hpp"
#include "platform/device_db.hpp"

namespace hidp::partition {
namespace {

struct Fixture {
  dnn::DnnGraph graph = dnn::zoo::build_efficientnet_b0();
  std::vector<platform::NodeModel> nodes = platform::paper_cluster();
  net::NetworkSpec network{nodes};
};

TEST(CostModel, CandidatesBracketTheGraph) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kHierarchicalLocal);
  const auto& c = cost.candidates();
  ASSERT_GE(c.size(), 3u);
  EXPECT_EQ(c.front(), 0);
  EXPECT_EQ(c.back(), static_cast<int>(f.graph.size()));
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GT(c[i], c[i - 1]);
  EXPECT_EQ(cost.segment_count(), c.size() - 1);
}

TEST(CostModel, ProfilesAreConsistentWithGraph) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kHierarchicalLocal);
  const int last = static_cast<int>(cost.segment_count());
  const auto whole = cost.profile_between(0, last);
  EXPECT_NEAR(whole.total(), f.graph.total_flops(), f.graph.total_flops() * 1e-9);
  // Additivity over an interior split.
  const int mid = last / 2;
  EXPECT_NEAR(cost.profile_between(0, mid).total() + cost.profile_between(mid, last).total(),
              whole.total(), whole.total() * 1e-9);
}

TEST(CostModel, BoundaryBytesEndpoints) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kHierarchicalLocal);
  EXPECT_EQ(cost.boundary_bytes(0), f.graph.input_shape().bytes(4));
  EXPECT_EQ(cost.boundary_bytes(static_cast<int>(cost.segment_count())),
            f.graph.output_shape().bytes(4));
}

TEST(CostModel, HierarchicalNeverSlowerThanDefault) {
  Fixture f;
  ClusterCostModel dflt(f.graph, f.nodes, f.network, NodeExecutionPolicy::kDefaultProcessor);
  ClusterCostModel hier(f.graph, f.nodes, f.network, NodeExecutionPolicy::kHierarchicalLocal);
  const int last = static_cast<int>(dflt.segment_count());
  for (std::size_t node = 0; node < f.nodes.size(); ++node) {
    EXPECT_LE(hier.node_time(node, 0, last), dflt.node_time(node, 0, last) + 1e-12)
        << f.nodes[node].name();
  }
}

TEST(CostModel, NodeTimeMemoisedAndDecisionExposed) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kHierarchicalLocal);
  LocalDecision d1, d2;
  const double t1 = cost.node_time(1, 0, 5, &d1);
  const double t2 = cost.node_time(1, 0, 5, &d2);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_EQ(d1.config.mode, d2.config.mode);
  EXPECT_DOUBLE_EQ(d1.latency_s, t1);
}

TEST(CostModel, EmptyRangeIsFree) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kDefaultProcessor);
  EXPECT_DOUBLE_EQ(cost.node_time(0, 3, 3), 0.0);
  EXPECT_DOUBLE_EQ(cost.node_time(0, 5, 2), 0.0);
}

TEST(CostModel, ProcTimeMatchesProcessorModel) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kDefaultProcessor);
  const auto profile = cost.profile_between(0, 4);
  EXPECT_DOUBLE_EQ(cost.proc_time(1, 0, 0, 4), f.nodes[1].processor(0).time_for(profile, 1));
}

TEST(CostModel, TransferUsesLinkSpec) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kDefaultProcessor);
  EXPECT_DOUBLE_EQ(cost.transfer_s(0, 1, 80'000'000), 1.0 + 4e-3);
  EXPECT_LT(cost.transfer_s(2, 2, 80'000'000), 1e-3);  // loopback
}

TEST(CostModel, DefaultPolicyRateIsDefaultProcessor) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kDefaultProcessor);
  // For the RPi5, default placement (GPU) is much slower than the node's
  // aggregate capability — the rate must reflect the default placement.
  const double rpi5_rate = cost.node_rate_gflops(3);
  ClusterCostModel hier(f.graph, f.nodes, f.network, NodeExecutionPolicy::kHierarchicalLocal);
  EXPECT_LT(rpi5_rate, hier.node_rate_gflops(3));
}

TEST(CostModel, PsiPositiveAndLeaderDominates) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kHierarchicalLocal);
  const auto psi = cost.psi(0);
  ASSERT_EQ(psi.size(), f.nodes.size());
  for (std::size_t j = 1; j < psi.size(); ++j) EXPECT_GT(psi[j], 0.0);
  // The leader's loopback beta is huge -> psi ~ 0 for itself.
  EXPECT_LT(psi[0], psi[1]);
}

TEST(CostModel, ModeNames) {
  EXPECT_EQ(partition_mode_name(PartitionMode::kNone), "none");
  EXPECT_EQ(partition_mode_name(PartitionMode::kModel), "model");
  EXPECT_EQ(partition_mode_name(PartitionMode::kData), "data");
}

TEST(CostModel, CandidateThinningBoundsList) {
  Fixture f;
  ClusterCostModel coarse(f.graph, f.nodes, f.network,
                          NodeExecutionPolicy::kHierarchicalLocal, 4, /*max_candidates=*/10);
  EXPECT_LE(coarse.candidates().size(), 10u);
  EXPECT_EQ(coarse.candidates().front(), 0);
  EXPECT_EQ(coarse.candidates().back(), static_cast<int>(f.graph.size()));
  // Whole-network profile must be unaffected by thinning.
  const auto whole =
      coarse.profile_between(0, static_cast<int>(coarse.segment_count()));
  EXPECT_NEAR(whole.total(), f.graph.total_flops(), f.graph.total_flops() * 1e-9);
}

TEST(CostModel, TinyCandidateBudgetDoesNotDivideByZero) {
  // max_candidates == 3 leaves a one-slot interior budget; the even-step
  // thinning divisor used to be (keep - 1) == 0.
  Fixture f;
  for (const int max_candidates : {3, 4}) {
    ClusterCostModel cost(f.graph, f.nodes, f.network,
                          NodeExecutionPolicy::kHierarchicalLocal, 4, max_candidates);
    ASSERT_GE(cost.candidates().size(), 3u);
    EXPECT_LE(cost.candidates().size(), static_cast<std::size_t>(max_candidates));
    EXPECT_EQ(cost.candidates().front(), 0);
    EXPECT_EQ(cost.candidates().back(), static_cast<int>(f.graph.size()));
    const auto whole =
        cost.profile_between(0, static_cast<int>(cost.segment_count()));
    EXPECT_NEAR(whole.total(), f.graph.total_flops(), f.graph.total_flops() * 1e-9);
  }
}

TEST(CostModel, LocalDecisionMemoised) {
  Fixture f;
  ClusterCostModel cost(f.graph, f.nodes, f.network, NodeExecutionPolicy::kHierarchicalLocal);
  const auto work = platform::WorkProfile::from_graph(f.graph, 0, 30);
  const auto& d1 = cost.local_decision(1, work, 1 << 20);
  const auto& d2 = cost.local_decision(1, work, 1 << 20);
  EXPECT_EQ(&d1, &d2);  // same cached entry
  EXPECT_GT(d1.latency_s, 0.0);
  // Different node -> different decision slot.
  const auto& d3 = cost.local_decision(2, work, 1 << 20);
  EXPECT_NE(&d1, &d3);
}

}  // namespace
}  // namespace hidp::partition
