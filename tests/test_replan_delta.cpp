// Incremental delta re-planning: equivalence and repair-path coverage.
//
// The delta path's contract is *provable equivalence*: a plan served off a
// repaired cache / re-priced cost model must be bit-identical to the plan a
// cold replan produces on the same post-event snapshot, and zero-event runs
// must be bit-identical with the flag on or off. The tests drive a
// delta-enabled and a delta-disabled HiDP strategy in lockstep over one
// cluster through scripted DVFS, radio (Gilbert-Elliott style), link
// partition and churn events, and pin the observability counters end to
// end (cache stats -> ServiceStats).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/hidp_strategy.hpp"
#include "core/plan_cache.hpp"
#include "partition/cost_model.hpp"
#include "runtime/churn.hpp"
#include "runtime/cluster.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

using core::CrossRequestPlanCache;
using core::GlobalDecisionKey;
using core::HidpStrategy;
using dnn::zoo::ModelId;

core::HidpStrategy::Options delta_options(bool delta) {
  core::HidpStrategy::Options options;
  options.probe_noise_fraction = 0.0;  // determinism across strategies
  options.delta_replanning = delta;
  return options;
}

ClusterSnapshot snapshot_of(const Cluster& cluster, std::size_t leader) {
  ClusterSnapshot snap;
  snap.nodes = &cluster.nodes();
  snap.network = cluster.network().spec();
  snap.available.resize(cluster.size());
  for (std::size_t j = 0; j < cluster.size(); ++j) {
    snap.available[j] = cluster.node_available(j);
  }
  snap.leader = leader;
  return snap;
}

PlanRequest request_for(const dnn::DnnGraph& model, const Cluster& cluster,
                        std::size_t leader) {
  PlanRequest request;
  request.model = &model;
  request.snapshot = snapshot_of(cluster, leader);
  return request;
}

/// Bit-identical comparison of everything except the FSM phase charges —
/// those legitimately differ between a cache hit (cheap lookup) and a cold
/// replan, and their cheapness is the delta path's whole point.
void expect_plans_equal(const Plan& repaired, const Plan& cold, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(repaired.strategy, cold.strategy);
  EXPECT_EQ(repaired.global_mode, cold.global_mode);
  EXPECT_EQ(repaired.leader, cold.leader);
  EXPECT_DOUBLE_EQ(repaired.predicted_latency_s, cold.predicted_latency_s);
  EXPECT_DOUBLE_EQ(repaired.period_s, cold.period_s);
  EXPECT_EQ(repaired.nodes_used, cold.nodes_used);
  ASSERT_EQ(repaired.tasks.size(), cold.tasks.size());
  for (std::size_t i = 0; i < repaired.tasks.size(); ++i) {
    SCOPED_TRACE(i);
    const PlanTask& a = repaired.tasks[i];
    const PlanTask& b = cold.tasks[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.proc, b.proc);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.flops, b.flops);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.deps, b.deps);
    EXPECT_EQ(a.label, b.label);
  }
}

/// One delta-enabled and one delta-disabled strategy observing the same
/// cluster: every plan call runs on both and the plans must agree.
struct LockstepPair {
  explicit LockstepPair(Cluster& cluster)
      : delta(delta_options(true)), cold(delta_options(false)) {
    cluster.add_observer([this](const NodeEvent& event) {
      delta.on_node_event(event);
      cold.on_node_event(event);
    });
  }
  void plan_and_compare(const dnn::DnnGraph& model, Cluster& cluster, std::size_t leader,
                        const char* what) {
    const PlanRequest request = request_for(model, cluster, leader);
    const Plan delta_plan = delta.plan(request).plan;
    const Plan cold_plan = cold.plan(request).plan;
    expect_plans_equal(delta_plan, cold_plan, what);
  }
  HidpStrategy delta;
  HidpStrategy cold;
};

// ---- per-node cost-model repricing -----------------------------------------

TEST(RepriceNode, BitIdenticalToFreshModelAfterDvfs) {
  Cluster cluster(platform::paper_cluster());
  ModelSet models;
  const dnn::DnnGraph& graph = models.graph(ModelId::kEfficientNetB0);
  partition::ClusterCostModel model(graph, cluster.nodes(), cluster.network().spec(),
                                    partition::NodeExecutionPolicy::kHierarchicalLocal);
  // Warm every memo the DSE consults: block decisions, rates, Psi.
  const std::size_t candidate_count = model.candidates().size();
  for (std::size_t node = 0; node < cluster.size(); ++node) {
    for (std::size_t ci = 0; ci < candidate_count; ++ci) {
      for (std::size_t cj = ci + 1; cj < candidate_count; ++cj) {
        model.node_time(node, static_cast<int>(ci), static_cast<int>(cj));
      }
    }
    model.node_rate_gflops(node);
  }
  model.psi(0);

  // DVFS mutates the live NodeModel in place; the cost model holds a
  // pointer to the vector, so only its memos are stale.
  cluster.set_dvfs_scale(2, 0.6);
  const std::size_t rows = model.reprice_node(2);
  EXPECT_GT(rows, 0u);

  partition::ClusterCostModel fresh(graph, cluster.nodes(), cluster.network().spec(),
                                    partition::NodeExecutionPolicy::kHierarchicalLocal);
  for (std::size_t node = 0; node < cluster.size(); ++node) {
    SCOPED_TRACE(node);
    EXPECT_DOUBLE_EQ(model.node_rate_gflops(node), fresh.node_rate_gflops(node));
    for (std::size_t ci = 0; ci < candidate_count; ++ci) {
      for (std::size_t cj = ci + 1; cj < candidate_count; ++cj) {
        EXPECT_DOUBLE_EQ(model.node_time(node, static_cast<int>(ci), static_cast<int>(cj)),
                         fresh.node_time(node, static_cast<int>(ci), static_cast<int>(cj)))
            << "node " << node << " block [" << ci << ", " << cj << ")";
      }
    }
  }
  const std::vector<double> repaired_psi = model.psi(0);
  const std::vector<double> fresh_psi = fresh.psi(0);
  ASSERT_EQ(repaired_psi.size(), fresh_psi.size());
  for (std::size_t i = 0; i < repaired_psi.size(); ++i) {
    EXPECT_DOUBLE_EQ(repaired_psi[i], fresh_psi[i]) << "psi[" << i << "]";
  }
}

// ---- lockstep equivalence over scripted event traces ------------------------

TEST(DeltaEquivalence, DvfsDegradeAndRecoverMatchColdReplans) {
  Cluster cluster(platform::paper_cluster());
  ModelSet models;
  LockstepPair pair(cluster);
  const ModelId zoo[] = {ModelId::kEfficientNetB0, ModelId::kResNet152, ModelId::kVgg19};
  for (const ModelId id : zoo) {
    pair.plan_and_compare(models.graph(id), cluster, 0, "warm");
  }
  // Degradation: scoped invalidation + per-node repricing on the delta side.
  cluster.set_dvfs_scale(4, 0.7);
  for (const ModelId id : zoo) {
    pair.plan_and_compare(models.graph(id), cluster, 0, "post-degrade");
  }
  // Improvement: the delta side must flush entries wholesale (a faster node
  // can newly win situations whose cached plans avoided it) but still
  // repair the cost models — plans must keep matching.
  cluster.set_dvfs_scale(4, 1.0);
  for (const ModelId id : zoo) {
    pair.plan_and_compare(models.graph(id), cluster, 0, "post-recover");
  }
  // The delta side actually took the repair path.
  EXPECT_GT(pair.delta.plan_cache_stats().partial_repriced_rows, 0u);
  EXPECT_EQ(pair.cold.plan_cache_stats().partial_repriced_rows, 0u);
}

TEST(DeltaEquivalence, GilbertElliottRadioTraceMatchesColdReplans) {
  Cluster cluster(platform::paper_cluster());
  ModelSet models;
  LockstepPair pair(cluster);
  const ModelId zoo[] = {ModelId::kEfficientNetB0, ModelId::kResNet152};
  for (const ModelId id : zoo) {
    pair.plan_and_compare(models.graph(id), cluster, 0, "warm");
  }
  // Two-state Gilbert-Elliott radio on node 3: good <-> bad with fixed
  // transition probabilities, deterministic seed. Bad state degrades the
  // radio (delta: scoped invalidation); returning to good is an
  // improvement (delta: wholesale flush). Both must match cold replans.
  std::mt19937 rng(7);
  std::bernoulli_distribution to_bad(0.45);
  std::bernoulli_distribution to_good(0.6);
  bool bad = false;
  for (int step = 0; step < 12; ++step) {
    const bool next = bad ? !to_good(rng) : to_bad(rng);
    if (next != bad) {
      bad = next;
      if (bad) {
        cluster.set_radio_scale(3, 0.4, 1.5);
      } else {
        cluster.set_radio_scale(3, 1.0, 1.0);
      }
    }
    for (const ModelId id : zoo) {
      pair.plan_and_compare(models.graph(id), cluster, 0, bad ? "bad" : "good");
    }
  }
}

TEST(DeltaEquivalence, LinkPartitionAndHealMatchColdReplans) {
  Cluster cluster(platform::paper_cluster());
  ModelSet models;
  LockstepPair pair(cluster);
  const dnn::DnnGraph& graph = models.graph(ModelId::kResNet152);
  pair.plan_and_compare(graph, cluster, 0, "warm");
  cluster.set_link_up(1, 3, false);  // partition: degradation
  pair.plan_and_compare(graph, cluster, 0, "partitioned");
  cluster.set_link_up(1, 3, true);  // heal: improvement
  pair.plan_and_compare(graph, cluster, 0, "healed");
}

TEST(DeltaEquivalence, ChurnDownAndRejoinMatchColdReplans) {
  Cluster cluster(platform::paper_cluster());
  ModelSet models;
  LockstepPair pair(cluster);
  const ModelId zoo[] = {ModelId::kEfficientNetB0, ModelId::kVgg19};
  for (const ModelId id : zoo) {
    pair.plan_and_compare(models.graph(id), cluster, 0, "warm");
  }
  cluster.set_node_available(2, false);
  for (const ModelId id : zoo) {
    pair.plan_and_compare(models.graph(id), cluster, 0, "post-down");
  }
  cluster.set_node_available(2, true);
  for (const ModelId id : zoo) {
    pair.plan_and_compare(models.graph(id), cluster, 0, "post-rejoin");
  }
}

// ---- node-down re-keying ----------------------------------------------------

TEST(DeltaRekey, SurvivingEntryServesHitAfterNodeDeparture) {
  // Seven nodes; node 6 (a Pi 4) is the slowest, so it sits last in the
  // Psi worker ordering — beyond every explored sigma prefix (max 5) —
  // and HiDP's plans never assign it work. Its departure is exactly the
  // case the re-key path proves survivable.
  std::vector<platform::NodeModel> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(platform::make_device("Jetson TX2"));
  nodes.push_back(platform::make_device("Raspberry Pi 4"));
  Cluster cluster(std::move(nodes));
  ModelSet models;
  const dnn::DnnGraph& graph = models.graph(ModelId::kEfficientNetB0);

  HidpStrategy delta(delta_options(true));
  HidpStrategy cold(delta_options(false));
  cluster.add_observer([&](const NodeEvent& event) { delta.on_node_event(event); });

  const Plan before = delta.plan(request_for(graph, cluster, 0)).plan;
  for (const PlanTask& task : before.tasks) {
    ASSERT_NE(task.node, 6u);
    ASSERT_NE(task.from, 6u);
    ASSERT_NE(task.to, 6u);
  }

  cluster.set_node_available(6, false);
  EXPECT_GE(delta.plan_cache_stats().rekeyed_entries, 1u);

  // The post-churn situation hits the re-keyed entry; the replayed plan is
  // bit-identical to a cold replan on the node-less snapshot.
  const std::size_t hits_before = delta.plan_cache_stats().hits;
  const Plan repaired = delta.plan(request_for(graph, cluster, 0)).plan;
  EXPECT_EQ(delta.plan_cache_stats().hits, hits_before + 1);
  const Plan recomputed = cold.plan(request_for(graph, cluster, 0)).plan;
  expect_plans_equal(repaired, recomputed, "post-departure");

  // Flapping recovery: the original entry was kept, so the rejoin serves a
  // hit too (availability is part of the key — no invalidation needed).
  cluster.set_node_available(6, true);
  const std::size_t hits_mid = delta.plan_cache_stats().hits;
  delta.plan(request_for(graph, cluster, 0));
  EXPECT_EQ(delta.plan_cache_stats().hits, hits_mid + 1);
}

// ---- cache-level scoped invalidation mechanics ------------------------------

TEST(ScopedInvalidation, DropsTouchingAndUnprovableEntriesOnly) {
  CrossRequestPlanCache<int> cache(16);
  const auto key_of = [](std::uint64_t mask, std::size_t leader) {
    GlobalDecisionKey key;
    key.leader = leader;
    key.availability_mask = mask;
    return key;
  };
  const auto touch_of = [](std::initializer_list<std::size_t> nodes) {
    std::vector<std::uint64_t> mask(1, 0);
    for (const std::size_t j : nodes) mask[0] |= std::uint64_t{1} << j;
    return mask;
  };
  cache.insert(key_of(0xF, 0), 1, touch_of({0, 1}));  // touches the event node
  cache.insert(key_of(0xF, 1), 2, touch_of({2, 3}));  // untouched, provable
  cache.insert(key_of(0xF, 2), 3);                    // unknown touch mask
  const std::size_t dropped = cache.invalidate_touching(
      0, NodeEvent::kNoPeer, [](const GlobalDecisionKey&, const int&) { return true; });
  EXPECT_EQ(dropped, 2u);  // the toucher and the unknown-mask entry
  EXPECT_EQ(cache.find(key_of(0xF, 0)), nullptr);
  ASSERT_NE(cache.find(key_of(0xF, 1)), nullptr);
  EXPECT_EQ(*cache.find(key_of(0xF, 1)), 2);
  EXPECT_EQ(cache.find(key_of(0xF, 2)), nullptr);
  EXPECT_EQ(cache.stats().scoped_invalidations, 2u);

  // A peer-scoped (link partition) event drops entries touching either end.
  cache.insert(key_of(0xF, 3), 4, touch_of({2}));
  cache.invalidate_touching(5, /*peer=*/2,
                            [](const GlobalDecisionKey&, const int&) { return true; });
  EXPECT_EQ(cache.find(key_of(0xF, 3)), nullptr);

  // An unprovable untouched entry is dropped when the survival predicate
  // declines it.
  cache.insert(key_of(0xF, 4), 5, touch_of({3}));
  cache.invalidate_touching(0, NodeEvent::kNoPeer,
                            [](const GlobalDecisionKey&, const int&) { return false; });
  EXPECT_EQ(cache.find(key_of(0xF, 4)), nullptr);
}

TEST(ScopedInvalidation, RekeyCopiesEligibleEntriesUnderClearedMask) {
  CrossRequestPlanCache<int> cache(16);
  GlobalDecisionKey key;
  key.availability_mask = 0xF;  // nodes 0..3 up
  std::vector<std::uint64_t> touch(1, 0b0011);  // touches nodes 0, 1
  cache.insert(key, 42, touch);
  // Node 3 leaves: the entry does not touch it, so a copy appears under the
  // cleared mask and the original survives for flapping recovery.
  const std::size_t rekeyed = cache.rekey_availability(
      3, [](const GlobalDecisionKey&, int& payload) {
        payload += 1;  // eligible() may rewrite the copy
        return true;
      });
  EXPECT_EQ(rekeyed, 1u);
  GlobalDecisionKey rekeyed_key = key;
  rekeyed_key.availability_mask = 0x7;
  ASSERT_NE(cache.find(rekeyed_key), nullptr);
  EXPECT_EQ(*cache.find(rekeyed_key), 43);
  ASSERT_NE(cache.find(key), nullptr);
  EXPECT_EQ(*cache.find(key), 42);
  EXPECT_EQ(cache.stats().rekeyed_entries, 1u);
  // A touching entry never re-keys.
  const std::size_t again = cache.rekey_availability(
      0, [](const GlobalDecisionKey&, int&) { return true; });
  EXPECT_EQ(again, 0u);
}

// ---- zero-event bit-identity and stats propagation --------------------------

TEST(DeltaZeroEvent, ServiceRunBitIdenticalWithFlagOn) {
  ModelSet models;
  const auto run_once = [&](bool delta) {
    Cluster cluster(platform::paper_cluster());
    HidpStrategy strategy(delta_options(delta));
    ServiceOptions options;
    options.delta_replanning = delta;
    options.max_in_flight = 2;
    InferenceService service(cluster, strategy, /*leader=*/1, options);
    PoissonArrivals::Options poisson;
    poisson.rate_hz = 40.0;
    poisson.count = 30;
    poisson.seed = 11;
    PoissonArrivals arrivals(models, {ModelId::kEfficientNetB0, ModelId::kResNet152},
                             poisson);
    service.attach(&arrivals);
    auto records = service.run();
    return std::make_pair(std::move(records), strategy.plan_cache_stats());
  };
  const auto [on, on_stats] = run_once(true);
  const auto [off, off_stats] = run_once(false);
  ASSERT_EQ(on.size(), 30u);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i].id, off[i].id);
    EXPECT_EQ(on[i].outcome, off[i].outcome);
    EXPECT_DOUBLE_EQ(on[i].arrival_s, off[i].arrival_s);
    EXPECT_DOUBLE_EQ(on[i].dispatch_s, off[i].dispatch_s);
    EXPECT_DOUBLE_EQ(on[i].finish_s, off[i].finish_s);
    EXPECT_DOUBLE_EQ(on[i].flops, off[i].flops);
  }
  EXPECT_EQ(on_stats.hits, off_stats.hits);
  EXPECT_EQ(on_stats.misses, off_stats.misses);
  // Without events there is nothing to repair or scope.
  EXPECT_EQ(on_stats.scoped_invalidations, 0u);
  EXPECT_EQ(on_stats.rekeyed_entries, 0u);
  EXPECT_EQ(on_stats.partial_repriced_rows, 0u);
}

TEST(DeltaStats, PlannerCountersSurfaceInServiceStats) {
  Cluster cluster(platform::paper_cluster());
  HidpStrategy strategy(delta_options(true));
  ServiceOptions options;
  options.delta_replanning = true;
  InferenceService service(cluster, strategy, /*leader=*/0, options);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  service.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 1.0});
  // DVFS degradation on the leader between the two requests: the cached
  // plan touches its leader, so the entry drops (scoped) and the second
  // request replans fresh — off the per-node repaired cost model.
  ScriptedChurn trace({{0.5, 0, ChurnEvent::Action::kDvfs, 0.7}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(records[1].outcome, RequestOutcome::kCompleted);
  const ServiceStats& stats = service.stats();
  EXPECT_GE(stats.cold_replans, 1u);
  EXPECT_GE(stats.partial_repriced_rows, 1u);
  EXPECT_GE(stats.repaired_plans, 1u);
  // The mirror matches the strategy's own counters.
  const PlannerDeltaStats planner = strategy.planner_stats();
  EXPECT_EQ(stats.repaired_plans, planner.repaired_plans);
  EXPECT_EQ(stats.cold_replans, planner.cold_replans);
  EXPECT_EQ(stats.partial_repriced_rows, planner.partial_repriced_rows);
}

}  // namespace
}  // namespace hidp::runtime
