// Continuous batching: max_batch=1 bit-identity with the seed paths, group
// formation / hold-timer / FSM-window join mechanics, per-class stats
// balance over grouped outcomes, group-failure retry re-forming smaller
// groups, preemptible reservation reclaim, batch-aware cost-model tables,
// and degradation-aware fleet routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hidp_strategy.hpp"
#include "partition/cost_model.hpp"
#include "runtime/fleet.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"
#include "sim/resource.hpp"

namespace hidp::runtime {
namespace {

using dnn::zoo::ModelId;

std::vector<platform::NodeModel> uniform_cluster(std::size_t n) {
  std::vector<platform::NodeModel> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(platform::make_device("Jetson TX2"));
  return nodes;
}

/// Plans one 0.5 s compute task on node 0 plus one on node 1 while node 1
/// is up (independent, so they run concurrently); leader-only otherwise.
/// Phase-free, so runs start at the dispatch instant — churn timing in the
/// preemption tests is exact.
class TwoNodeStrategy : public IStrategy {
 public:
  std::string name() const override { return "TwoNode"; }
  PlanResult plan(const PlanRequest& request) override {
    const auto& available = request.snapshot.available;
    Plan plan;
    plan.strategy = name();
    plan.leader = request.snapshot.leader;
    PlanTask a;
    a.kind = PlanTask::Kind::kCompute;
    a.node = 0;
    a.proc = 0;
    a.seconds = 0.5;
    a.flops = 1e9;
    plan.tasks.push_back(a);
    if (available.size() > 1 && available[1]) {
      PlanTask b = a;
      b.node = 1;
      plan.tasks.push_back(b);
      plan.nodes_used = 2;
    } else {
      plan.nodes_used = 1;
    }
    return PlanResult{std::move(plan), false};
  }
};

void expect_bit_identical(const std::vector<RequestRecord>& a,
                          const std::vector<RequestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].strategy, b[i].strategy);
    EXPECT_EQ(a[i].mode, b[i].mode);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].nodes_used, b[i].nodes_used);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].dispatch_s, b[i].dispatch_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].finish_s, b[i].finish_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].flops, b[i].flops) << "request " << a[i].id;
  }
}

void expect_class_balance(const ServiceStats& stats) {
  for (std::size_t c = 0; c < kQosClassCount; ++c) {
    const QosClassStats& s = stats.per_class[c];
    EXPECT_EQ(s.submitted - s.stolen_away + s.stolen_in,
              s.completed + s.rejected + s.dropped + s.deadline_misses + s.failed)
        << "class " << c;
  }
  EXPECT_EQ(stats.submitted - stats.stolen_away + stats.stolen_in,
            stats.completed + stats.rejected + stats.dropped + stats.deadline_misses +
                stats.failed);
}

/// max_batch=1 must keep the service the same computation as the seed: the
/// whole batching layer (hold knob included) has to be inert, reproducing
/// the closed-world engine run bit for bit on the paper workloads.
TEST(BatchingIdentity, MaxBatchOneReproducesEngineRun) {
  ModelSet models;
  util::Rng mix_rng_a(21), mix_rng_b(21);
  const std::vector<ModelId> mix{ModelId::kEfficientNetB0, ModelId::kVgg19};
  const std::vector<std::vector<RequestSpec>> workloads_a{
      periodic_stream(models.graph(ModelId::kResNet152), 8, 0.2),
      staggered_streams(models, dnn::zoo::all_models(), 0.5, 3, 0.25),
      mixed_stream(models, mix, 10, 0.05, mix_rng_a),
  };
  const std::vector<std::vector<RequestSpec>> workloads_b{
      periodic_stream(models.graph(ModelId::kResNet152), 8, 0.2),
      staggered_streams(models, dnn::zoo::all_models(), 0.5, 3, 0.25),
      mixed_stream(models, mix, 10, 0.05, mix_rng_b),
  };
  for (std::size_t w = 0; w < workloads_a.size(); ++w) {
    Cluster batch_cluster(platform::paper_cluster());
    core::HidpStrategy batch_strategy;
    ExecutionEngine engine(batch_cluster, batch_strategy, 1);
    const auto batch_records = engine.run(workloads_a[w]);

    Cluster service_cluster(platform::paper_cluster());
    core::HidpStrategy service_strategy;
    ServiceOptions options;
    options.max_batch = 1;
    options.max_wait_s = 0.25;  // must be ignored at batch 1
    InferenceService service(service_cluster, service_strategy, 1, options);
    ReplayArrivals arrivals(workloads_b[w]);
    service.attach(&arrivals);
    const auto service_records = service.run();

    expect_bit_identical(batch_records, service_records);
    EXPECT_EQ(service.stats().groups_dispatched, 0u);
    EXPECT_EQ(service.stats().group_joins, 0u);
    EXPECT_EQ(service.stats().batched_requests, 0u);
  }
}

/// Same-model simultaneous arrivals coalesce into one group of max_batch;
/// every member gets its own terminal record off the shared run.
TEST(BatchingFormation, CoalescesSameModelArrivalsIntoOneGroup) {
  ModelSet models;
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy strategy;
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_batch = 4;
  options.max_wait_s = 0.05;
  InferenceService service(cluster, strategy, 1, options);
  ReplayArrivals arrivals(
      periodic_stream(models.graph(ModelId::kEfficientNetB0), 4, 0.0));
  service.attach(&arrivals);
  const auto records = service.run();

  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(service.stats().completed, 4u);
  EXPECT_EQ(service.stats().groups_dispatched, 1u);
  EXPECT_EQ(service.stats().batched_requests, 4u);
  // One shared run: identical dispatch and finish stamps across members.
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(record.dispatch_s, records.front().dispatch_s);
    EXPECT_EQ(record.finish_s, records.front().finish_s);
  }
  expect_class_balance(service.stats());
}

/// An under-full group waits max_wait_s for peers, then dispatches anyway.
TEST(BatchingFormation, HoldTimerDispatchesUnderfullGroupAtExpiry) {
  ModelSet models;
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy strategy;
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_batch = 4;
  options.max_wait_s = 0.05;
  InferenceService service(cluster, strategy, 1, options);
  ReplayArrivals arrivals(
      periodic_stream(models.graph(ModelId::kEfficientNetB0), 2, 0.0));
  service.attach(&arrivals);
  const auto records = service.run();

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(service.stats().completed, 2u);
  EXPECT_EQ(service.stats().groups_dispatched, 1u);
  EXPECT_EQ(service.stats().batched_requests, 2u);
  // Dispatch happened at (or after) the hold expiry, not at arrival.
  for (const RequestRecord& record : records) {
    EXPECT_GE(record.dispatch_s, 0.05);
  }
}

/// An arrival landing inside a dispatched run's FSM-phase window joins the
/// group instead of queueing behind it: continuous batching's storm case.
/// With max_wait_s=0 the first request dispatches alone (as a joinable
/// size-1 group) and HiDP's planning phases keep its window open ~15 ms.
TEST(BatchingJoin, ArrivalInsideFsmWindowJoinsOpenGroup) {
  ModelSet models;
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy strategy;
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_batch = 4;
  InferenceService service(cluster, strategy, 1, options);
  ReplayArrivals arrivals(
      periodic_stream(models.graph(ModelId::kEfficientNetB0), 2, 0.005));
  service.attach(&arrivals);
  const auto records = service.run();

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(service.stats().completed, 2u);
  EXPECT_EQ(service.stats().group_joins, 1u);
  // The join replanned the shared run: both members carry the same (moved)
  // dispatch stamp and finish together.
  EXPECT_EQ(records[0].dispatch_s, records[1].dispatch_s);
  EXPECT_EQ(records[0].finish_s, records[1].finish_s);
  expect_class_balance(service.stats());
}

/// Mixed-class storm through bounded admission, shedding, expiry drops and
/// batching: every per-class slice must still balance submitted against
/// terminal outcomes — grouped outcomes attribute per member, not per run.
TEST(BatchingStats, PerClassBalanceHoldsUnderGroupedOutcomes) {
  ModelSet models;
  std::vector<RequestSpec> storm =
      periodic_stream(models.graph(ModelId::kEfficientNetB0), 60, 0.002);
  const QosClass classes[3] = {QosClass::kBestEffort, QosClass::kStandard,
                               QosClass::kInteractive};
  for (std::size_t i = 0; i < storm.size(); ++i) {
    storm[i].qos = classes[i % 3];
    if (i % 4 == 0) storm[i].deadline_s = storm[i].arrival_s + 0.05;
  }
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy strategy;
  ServiceOptions options;
  options.max_in_flight = 2;
  options.max_pending = 8;
  options.max_batch = 4;
  options.max_wait_s = 0.004;
  options.drop_expired_pending = true;
  options.shed_policy = LoadShedPolicy::kDropOldest;
  InferenceService service(cluster, strategy, 1, options);
  ReplayArrivals arrivals(storm);
  service.attach(&arrivals);
  const auto records = service.run();

  ASSERT_EQ(records.size(), 60u);
  EXPECT_EQ(service.stats().submitted, 60u);
  expect_class_balance(service.stats());
  EXPECT_GT(service.stats().groups_dispatched, 0u);
}

/// Mid-run node churn fails the whole group; every member re-enters the
/// pending queue and the retry re-forms a (possibly smaller) group on the
/// survivors, completing without terminal failures.
TEST(BatchingFailure, GroupFailureRetryReformsAndCompletes) {
  ModelSet models;
  Cluster cluster(uniform_cluster(2));
  TwoNodeStrategy strategy;
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_batch = 2;
  options.max_wait_s = 0.01;
  options.max_retries = 1;
  InferenceService service(cluster, strategy, 0, options);
  ReplayArrivals arrivals(periodic_stream(models.graph(ModelId::kEfficientNetB0), 2, 0.0));
  service.attach(&arrivals);
  cluster.simulator().schedule_at(0.1, [&] { cluster.set_node_available(1, false); });
  const auto records = service.run();

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(service.stats().completed, 2u);
  EXPECT_EQ(service.stats().failed, 0u);
  // Both members burned one retry, and the re-formed group is a second
  // dispatched group (the first fills max_batch at t=0, the retry re-forms
  // at the churn instant).
  EXPECT_EQ(service.stats().retries, 2u);
  EXPECT_EQ(service.stats().groups_dispatched, 2u);
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
  }
  expect_class_balance(service.stats());
}

/// The failed run's unexecuted compute reservations are reclaimed at the
/// failure instant: the retry's leader task starts immediately instead of
/// queueing behind the dead run's reservation. Group dispatched at t=0
/// (fills max_batch), churn at 0.1 → retry finishes at 0.1 + 0.5, not at
/// the dead reservation's end (0.5) + 0.5.
TEST(BatchingFailure, FailedRunReservationsAreReclaimedAtFailureInstant) {
  ModelSet models;
  Cluster cluster(uniform_cluster(2));
  TwoNodeStrategy strategy;
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_batch = 2;
  options.max_wait_s = 0.01;
  InferenceService service(cluster, strategy, 0, options);
  ReplayArrivals arrivals(periodic_stream(models.graph(ModelId::kEfficientNetB0), 2, 0.0));
  service.attach(&arrivals);
  cluster.simulator().schedule_at(0.1, [&] { cluster.set_node_available(1, false); });
  const auto records = service.run();

  ASSERT_EQ(records.size(), 2u);
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
    EXPECT_DOUBLE_EQ(record.finish_s, 0.6);
  }
}

TEST(PreemptibleReservations, CancelReclaimsRemainderAndRecomputesWatermark) {
  sim::Simulator sim;
  sim::Resource proc(sim, "proc");
  const std::uint64_t job = proc.submit(0.0, 10.0, [](sim::Time) {});
  EXPECT_DOUBLE_EQ(proc.free_at(), 10.0);
  EXPECT_DOUBLE_EQ(proc.busy_time(), 10.0);

  double reclaimed = -1.0;
  double second_job_end = -1.0;
  sim.schedule_at(4.0, [&] {
    reclaimed = proc.cancel(job, 4.0);
    // The window is reusable immediately: a new job starts at the cancel
    // instant instead of queueing behind the dead reservation.
    proc.submit(4.0, 2.0, [&](sim::Time t) { second_job_end = t; });
  });
  sim.run();

  EXPECT_DOUBLE_EQ(reclaimed, 6.0);
  EXPECT_DOUBLE_EQ(second_job_end, 6.0);
  EXPECT_DOUBLE_EQ(proc.free_at(), 6.0);
  EXPECT_DOUBLE_EQ(proc.busy_time(), 6.0);  // 4 executed + 2 new
  ASSERT_EQ(proc.intervals().size(), 2u);
  EXPECT_TRUE(proc.intervals()[0].truncated);
  EXPECT_DOUBLE_EQ(proc.intervals()[0].end, 4.0);
  // Cancelling an ended or unknown job is a harmless no-op.
  EXPECT_DOUBLE_EQ(proc.cancel(job, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(proc.cancel(9999, 7.0), 0.0);
}

/// Batch-aware cost tables: FLOPs and boundary bytes scale with the batch,
/// per-layer dispatch (layer counts) does not — so a batch of n costs less
/// than n solo runs on dispatch-bound work.
TEST(BatchingCostModel, TablesScaleFlopsAndBytesButNotLayerCounts) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  const std::vector<platform::NodeModel> nodes = uniform_cluster(2);
  const net::NetworkSpec network(nodes);
  const partition::ClusterCostModel cost1(model, nodes, network,
                                          partition::NodeExecutionPolicy::kDefaultProcessor);
  const partition::ClusterCostModel cost4(
      model, nodes, network, partition::NodeExecutionPolicy::kDefaultProcessor,
      /*bytes_per_element=*/4, partition::ClusterCostModel::kDefaultMaxCandidates,
      /*batch_size=*/4);
  ASSERT_EQ(cost1.candidates(), cost4.candidates());
  const int last = static_cast<int>(cost1.candidates().size()) - 1;
  const platform::WorkProfile whole1 = cost1.profile_between(0, last);
  const platform::WorkProfile whole4 = cost4.profile_between(0, last);
  EXPECT_DOUBLE_EQ(whole4.total(), 4.0 * whole1.total());
  EXPECT_DOUBLE_EQ(whole4.layer_count(), whole1.layer_count());
  for (int c = 0; c <= last; ++c) {
    EXPECT_EQ(cost4.boundary_bytes(c), 4 * cost1.boundary_bytes(c));
  }
  // Dispatch amortisation: pricing the whole net on one processor, a batch
  // of 4 is strictly cheaper than 4 solo passes (layer launches paid once).
  const double solo = cost1.proc_time(0, 0, 0, last);
  const double batched = cost4.proc_time(0, 0, 0, last);
  EXPECT_LT(batched, 4.0 * solo);
  EXPECT_GT(batched, solo);
}

TEST(BatchingCostModel, WorkProfileBatchedKeepsLayerCount) {
  ModelSet models;
  const platform::WorkProfile profile =
      platform::WorkProfile::from_graph(models.graph(ModelId::kVgg19));
  const platform::WorkProfile batched = profile.batched(3);
  EXPECT_DOUBLE_EQ(batched.total(), 3.0 * profile.total());
  EXPECT_DOUBLE_EQ(batched.layer_count(), profile.layer_count());
}

/// Adaptive hold regression: with no gap sample yet (the very first
/// arrivals of a model) the adaptive window falls back to the fixed
/// max_wait_s, so a single under-full group dispatches identically with
/// the knob on or off — and the knob defaults off.
TEST(AdaptiveWait, NoGapSampleFallsBackToFixedWindow) {
  ModelSet models;
  const auto workload = periodic_stream(models.graph(ModelId::kEfficientNetB0), 2, 0.0);
  std::vector<std::vector<RequestRecord>> runs;
  for (const bool adaptive : {false, true}) {
    Cluster cluster(platform::paper_cluster());
    core::HidpStrategy strategy;
    ServiceOptions options;
    options.max_in_flight = 1;
    options.max_batch = 4;
    options.max_wait_s = 0.05;
    options.adaptive_wait = adaptive;
    InferenceService service(cluster, strategy, 1, options);
    ReplayArrivals arrivals(workload);
    service.attach(&arrivals);
    runs.push_back(service.run());
  }
  expect_bit_identical(runs[0], runs[1]);
  // Both arrive at t=0: the observed gap is 0, no positive EWMA forms, and
  // the hold still runs the full fixed window.
  for (const RequestRecord& record : runs[1]) EXPECT_GE(record.dispatch_s, 0.05);
}

/// Once the stream has trained the gap EWMA, an under-full tail group's
/// hold scales to a few arrival gaps instead of stalling its head for the
/// full fixed knob.
TEST(AdaptiveWait, TrainedGapShortensTailGroupHold) {
  ModelSet models;
  // Six requests at a 0.05 s gap with max_batch 4: the first group fills
  // and dispatches while training the EWMA; the two-member tail group then
  // holds for (max_batch - 2) expected gaps = 0.1 s instead of 0.5 s.
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kResNet152), 6, 0.05);
  double dispatch_fixed = 0.0, dispatch_adaptive = 0.0;
  for (const bool adaptive : {false, true}) {
    Cluster cluster(platform::paper_cluster());
    core::HidpStrategy strategy;
    ServiceOptions options;
    options.max_in_flight = 1;
    options.max_batch = 4;
    options.max_wait_s = 0.5;
    options.adaptive_wait = adaptive;
    InferenceService service(cluster, strategy, 1, options);
    ReplayArrivals arrivals(workload);
    service.attach(&arrivals);
    const auto records = service.run();
    ASSERT_EQ(records.size(), 6u);
    EXPECT_EQ(service.stats().completed, 6u);
    (adaptive ? dispatch_adaptive : dispatch_fixed) = records[4].dispatch_s;
  }
  EXPECT_LT(dispatch_adaptive, dispatch_fixed);
}

/// Batch-aware deadline projection: with no execution EWMA yet, the seed
/// filter lets a doomed candidate ride the group (span unknown); pricing
/// the actual batched plan excludes it up front.
TEST(BatchAwareDeadline, PlanProjectionExcludesDoomedCandidate) {
  ModelSet models;
  std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kEfficientNetB0), 2, 0.0);
  // The second request could never finish by its deadline (planning phases
  // alone exceed 1 ms); the head has none.
  workload[1].deadline_s = 0.001;
  for (const bool batch_aware : {false, true}) {
    Cluster cluster(platform::paper_cluster());
    core::HidpStrategy strategy;
    ServiceOptions options;
    options.max_in_flight = 1;
    options.max_batch = 2;
    options.max_wait_s = 0.01;
    options.batch_aware_deadline = batch_aware;
    InferenceService service(cluster, strategy, 1, options);
    ReplayArrivals arrivals(workload);
    service.attach(&arrivals);
    const auto records = service.run();
    ASSERT_EQ(records.size(), 2u);
    if (batch_aware) {
      // Projection priced the 2-wide plan, saw the blown deadline and kept
      // the candidate out: no multi-member group forms.
      EXPECT_EQ(service.stats().batched_requests, 0u);
    } else {
      // avg_execution_s_ is still 0 at formation: the EWMA filter is blind
      // and the doomed request rides the batch.
      EXPECT_EQ(service.stats().batched_requests, 2u);
    }
    expect_class_balance(service.stats());
  }
}

/// Degradation-aware routing: with equal queue state, a shard whose worker
/// radio degraded loses to a healthy one; undegraded, the tie falls to the
/// lowest index as in least-loaded routing.
TEST(BatchingFleet, DegradationAwareRoutingAvoidsDegradedShard) {
  ModelSet models;
  for (const bool degrade : {false, true}) {
    Cluster cluster(uniform_cluster(4));
    core::HidpStrategy s0, s1;
    DegradationAwareRouting routing;
    ServiceFleet fleet(cluster,
                       {{&s0, {0, 1}, 0, ServiceOptions{}}, {&s1, {2, 3}, 2, ServiceOptions{}}},
                       routing);
    if (degrade) cluster.set_radio_scale(1, 0.3, 1.0);
    RequestSpec spec;
    spec.id = 0;
    spec.model = &models.graph(ModelId::kEfficientNetB0);
    spec.arrival_s = 0.0;
    fleet.submit(spec);
    fleet.run();
    const std::size_t expected = degrade ? 1u : 0u;
    EXPECT_EQ(fleet.shard(expected).stats().submitted, 1u) << "degrade=" << degrade;
    EXPECT_EQ(fleet.shard(1 - expected).stats().submitted, 0u) << "degrade=" << degrade;
  }
}

/// Group-aware stealing: a batching thief takes a coherent same-model group
/// in one rebalance pass and serves it as a batch.
TEST(BatchingFleet, BatchingThiefStealsWholeGroup) {
  ModelSet models;
  Cluster cluster(uniform_cluster(4));
  core::HidpStrategy s0, s1;
  RoundRobinRouting routing;  // routes at submission; shard 0 gets the burst
  ServiceOptions victim_options;
  victim_options.max_in_flight = 1;
  FleetOptions fleet_options;
  fleet_options.work_stealing = true;
  ServiceOptions thief_options;
  thief_options.max_in_flight = 1;
  thief_options.max_batch = 4;
  thief_options.max_wait_s = 0.005;
  // All requests land on shard 0 (round-robin over a model list of one
  // stream: force with explicit routing below instead).
  ServiceFleet fleet(cluster,
                     {{&s0, {0, 1}, 0, victim_options}, {&s1, {2, 3}, 2, thief_options}},
                     routing, fleet_options);
  // Saturate shard 0 directly so its queue backs up while shard 1 idles.
  std::vector<RequestSpec> burst =
      periodic_stream(models.graph(ModelId::kEfficientNetB0), 6, 0.0);
  for (const RequestSpec& spec : burst) fleet.shard(0).submit(spec);
  const auto records = fleet.run();

  ASSERT_EQ(records.size(), 6u);
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
  }
  // The thief adopted pending work from the victim as a group and batched
  // at least part of it.
  EXPECT_GT(fleet.shard(1).stats().stolen_in, 1u);
  EXPECT_GT(fleet.shard(1).stats().batched_requests + fleet.shard(1).stats().group_joins,
            0u);
  expect_class_balance(fleet.stats());
}

}  // namespace
}  // namespace hidp::runtime
