// DSE agent: worker ordering, mode selection, queue-aware objective.
#include <gtest/gtest.h>

#include "core/dse_agent.hpp"
#include "core/global_partitioner.hpp"
#include "core/local_partitioner.hpp"
#include "dnn/zoo/zoo.hpp"
#include "platform/device_db.hpp"

namespace hidp::core {
namespace {

using partition::ClusterCostModel;
using partition::NodeExecutionPolicy;
using partition::PartitionMode;

struct Fixture {
  explicit Fixture(dnn::zoo::ModelId id = dnn::zoo::ModelId::kResNet152)
      : graph(dnn::zoo::build_model(id)),
        nodes(platform::paper_cluster()),
        network(nodes),
        cost(graph, nodes, network, NodeExecutionPolicy::kHierarchicalLocal) {}
  dnn::DnnGraph graph;
  std::vector<platform::NodeModel> nodes;
  net::NetworkSpec network;
  ClusterCostModel cost;
  std::vector<bool> all_available = std::vector<bool>(5, true);
};

TEST(DseAgent, WorkerOrderLeaderFirstThenByRate) {
  Fixture f;
  DseAgent agent;
  const auto workers = agent.order_workers(f.cost, 2, f.all_available);
  ASSERT_EQ(workers.size(), 5u);
  EXPECT_EQ(workers[0], 2u);  // leader first
  for (std::size_t i = 2; i < workers.size(); ++i) {
    EXPECT_GE(f.cost.node_rate_gflops(workers[i - 1]), f.cost.node_rate_gflops(workers[i]));
  }
}

TEST(DseAgent, UnavailableNodesExcluded) {
  Fixture f;
  DseAgent agent;
  std::vector<bool> avail{true, false, true, false, true};
  const auto workers = agent.order_workers(f.cost, 0, avail);
  EXPECT_EQ(workers.size(), 3u);
  for (const std::size_t w : workers) EXPECT_TRUE(avail[w]);
}

TEST(DseAgent, ProducesValidDecision) {
  Fixture f;
  DseAgent agent;
  const GlobalDecision d = agent.explore(f.cost, 0, f.all_available, 0);
  EXPECT_NE(d.mode, PartitionMode::kNone);
  EXPECT_GT(d.latency_s, 0.0);
  EXPECT_GT(d.bottleneck_s, 0.0);
  EXPECT_DOUBLE_EQ(d.effective_s, d.latency_s);  // empty queue
  if (d.mode == PartitionMode::kModel) {
    EXPECT_TRUE(d.model.valid);
  } else {
    EXPECT_TRUE(d.data.valid);
  }
}

TEST(DseAgent, QueuePressureRaisesEffectiveScore) {
  Fixture f;
  DseAgent agent;
  const GlobalDecision idle = agent.explore(f.cost, 0, f.all_available, 0);
  const GlobalDecision busy = agent.explore(f.cost, 0, f.all_available, 4);
  EXPECT_GE(busy.effective_s, idle.effective_s);
  // Under pressure the chosen bottleneck can only shrink or stay.
  EXPECT_LE(busy.bottleneck_s, idle.bottleneck_s + 1e-9);
}

TEST(DseAgent, DecisionBeatsNaiveSingleNodeDefault) {
  Fixture f;
  // Compare against running whole model on the leader with default policy.
  ClusterCostModel dflt(f.graph, f.nodes, f.network, NodeExecutionPolicy::kDefaultProcessor);
  const double naive = dflt.node_time(0, 0, static_cast<int>(dflt.segment_count()));
  DseAgent agent;
  const GlobalDecision d = agent.explore(f.cost, 0, f.all_available, 0);
  EXPECT_LT(d.latency_s, naive);
}

TEST(DseAgent, WeakLeaderPrefersDistribution) {
  Fixture f(dnn::zoo::ModelId::kVgg19);
  DseAgent agent;
  // Leader = Raspberry Pi 4 (weakest): the DSE must offload most work.
  const GlobalDecision d = agent.explore(f.cost, 4, f.all_available, 0);
  ASSERT_NE(d.mode, PartitionMode::kNone);
  bool uses_another_node = false;
  if (d.mode == PartitionMode::kModel) {
    for (const auto& block : d.model.blocks) uses_another_node |= block.node != 4;
  } else {
    for (const auto& slice : d.data.slices) uses_another_node |= slice.node != 4;
  }
  EXPECT_TRUE(uses_another_node);
}

TEST(DseAgent, SigmaCandidatesBoundedByCluster) {
  Fixture f;
  DseConfig config;
  config.sigma_candidates = {2, 3, 4, 50};  // 50 > cluster size: ignored
  DseAgent agent(config);
  const GlobalDecision d = agent.explore(f.cost, 0, f.all_available, 0);
  EXPECT_NE(d.mode, PartitionMode::kNone);
}

TEST(DseAgent, LocalOnlyConsideredWhenEnabled) {
  Fixture f(dnn::zoo::ModelId::kEfficientNetB0);
  DseConfig with;
  with.consider_local_only = true;
  DseConfig without;
  without.consider_local_only = false;
  const GlobalDecision a = DseAgent(with).explore(f.cost, 0, f.all_available, 0);
  const GlobalDecision b = DseAgent(without).explore(f.cost, 0, f.all_available, 0);
  // With the strongest node as leader and a tiny DNN, local-only should win
  // or tie; disabling it can only make the decision worse or equal.
  EXPECT_LE(a.effective_s, b.effective_s + 1e-12);
}

TEST(GlobalPartitioner, CompilesDecisionToPlan) {
  Fixture f;
  GlobalPartitioner partitioner;
  GlobalDecision decision;
  const runtime::Plan plan =
      partitioner.partition(f.cost, 0, f.all_available, 0, "HiDP", &decision);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.strategy, "HiDP");
  EXPECT_EQ(plan.global_mode, decision.mode);
  runtime::validate_plan(plan, f.nodes);
}

TEST(LocalPartitioner, CachesAndReportsGain) {
  Fixture f;
  LocalPartitioner local(f.nodes[1]);  // TX2
  const auto work = platform::WorkProfile::from_graph(f.graph);
  const auto d1 = local.decide(work, 1 << 20);
  const auto d2 = local.decide(work, 1 << 20);
  EXPECT_DOUBLE_EQ(d1.latency_s, d2.latency_s);
  EXPECT_EQ(local.cache_size(), 1u);
  EXPECT_GT(local.local_gain(work, 1 << 20), 0.0);
  const auto def = local.default_decision(work, 1 << 20);
  EXPECT_GT(def.latency_s, d1.latency_s);
}

}  // namespace
}  // namespace hidp::core
