// Unit tests for the wireless network model and availability probing.
#include <gtest/gtest.h>

#include "net/prober.hpp"
#include "platform/device_db.hpp"

namespace hidp::net {
namespace {

TEST(LinkSpec, TransferTimeIncludesLatency) {
  LinkSpec link{80e6, 2e-3};
  EXPECT_DOUBLE_EQ(link.transfer_s(0), 2e-3);
  EXPECT_DOUBLE_EQ(link.transfer_s(80'000'000), 1.0 + 2e-3);
  EXPECT_DOUBLE_EQ(link.transfer_s(-5), 2e-3);  // negative clamped
}

TEST(NetworkSpec, PairwiseLinks) {
  const auto nodes = platform::paper_cluster();
  NetworkSpec spec(nodes);
  EXPECT_EQ(spec.size(), 5u);
  const LinkSpec l = spec.link(0, 1);
  EXPECT_DOUBLE_EQ(l.bandwidth_bps, 80e6);
  EXPECT_DOUBLE_EQ(l.latency_s, 4e-3);  // both endpoints' protocol latency
  EXPECT_THROW(spec.link(0, 9), std::out_of_range);
}

TEST(NetworkSpec, LoopbackIsFree) {
  NetworkSpec spec(platform::paper_cluster());
  const LinkSpec l = spec.link(2, 2);
  EXPECT_DOUBLE_EQ(l.latency_s, 0.0);
  EXPECT_LT(l.transfer_s(1 << 20), 1e-5);
}

TEST(WirelessNetwork, DeliversWithTransferTime) {
  sim::Simulator sim;
  const auto nodes = platform::paper_cluster();
  WirelessNetwork net(sim, nodes);
  double delivered = -1.0;
  net.transfer(0, 1, 80'000'000, 0.0, [&](sim::Time t) { delivered = t; });
  sim.run();
  EXPECT_NEAR(delivered, 1.0 + 4e-3, 1e-9);
  EXPECT_EQ(net.bytes_transferred(), 80'000'000);
}

TEST(WirelessNetwork, RadioSerialisesConcurrentSends) {
  sim::Simulator sim;
  WirelessNetwork net(sim, platform::paper_cluster());
  std::vector<double> ends;
  // Two transfers from node 0 must serialise on node 0's radio.
  net.transfer(0, 1, 8'000'000, 0.0, [&](sim::Time t) { ends.push_back(t); });
  net.transfer(0, 2, 8'000'000, 0.0, [&](sim::Time t) { ends.push_back(t); });
  sim.run();
  ASSERT_EQ(ends.size(), 2u);
  const double single = 0.1 + 4e-3;
  EXPECT_NEAR(ends[0], single, 1e-9);
  EXPECT_NEAR(ends[1], 2.0 * single, 1e-9);
}

TEST(WirelessNetwork, DisjointPairsRunConcurrently) {
  sim::Simulator sim;
  WirelessNetwork net(sim, platform::paper_cluster());
  std::vector<double> ends;
  net.transfer(0, 1, 8'000'000, 0.0, [&](sim::Time t) { ends.push_back(t); });
  net.transfer(2, 3, 8'000'000, 0.0, [&](sim::Time t) { ends.push_back(t); });
  sim.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(ends[0], ends[1], 1e-9);  // no shared resource
}

TEST(WirelessNetwork, SharedMediumSerialisesEverything) {
  sim::Simulator sim;
  WirelessNetwork net(sim, platform::paper_cluster(), MediumMode::kSharedMedium);
  std::vector<double> ends;
  net.transfer(0, 1, 8'000'000, 0.0, [&](sim::Time t) { ends.push_back(t); });
  net.transfer(2, 3, 8'000'000, 0.0, [&](sim::Time t) { ends.push_back(t); });
  sim.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_GT(std::max(ends[0], ends[1]), 1.9 * std::min(ends[0], ends[1]));
}

TEST(WirelessNetwork, LoopbackSkipsRadio) {
  sim::Simulator sim;
  WirelessNetwork net(sim, platform::paper_cluster());
  double delivered = -1.0;
  net.transfer(1, 1, 1 << 30, 0.5, [&](sim::Time t) { delivered = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered, 0.5);
  EXPECT_EQ(net.bytes_transferred(), 0);
  EXPECT_DOUBLE_EQ(net.radio_busy_s(1), 0.0);
}

TEST(WirelessNetwork, UnavailableNodeRejectsTransfers) {
  sim::Simulator sim;
  WirelessNetwork net(sim, platform::paper_cluster());
  net.set_available_for_test(2, false);
  EXPECT_FALSE(net.available(2));
  EXPECT_THROW(net.transfer(0, 2, 100, 0.0, [](sim::Time) {}), std::runtime_error);
  EXPECT_THROW(net.transfer(2, 0, 100, 0.0, [](sim::Time) {}), std::runtime_error);
}

TEST(Prober, ReportsAvailabilityVector) {
  NetworkSpec spec(platform::paper_cluster());
  ClusterProber prober(spec, 1024, 0.0);
  util::Rng rng(1);
  std::vector<bool> avail{true, true, false, true, true};
  const ProbeReport report = prober.probe(0, avail, rng);
  EXPECT_EQ(report.available_count(), 4u);
  EXPECT_FALSE(report.available[2]);
  EXPECT_DOUBLE_EQ(report.beta_bps[2], 0.0);
  EXPECT_GT(report.beta_bps[1], 0.0);
}

TEST(Prober, NoiselessBetaMatchesLink) {
  NetworkSpec spec(platform::paper_cluster());
  ClusterProber prober(spec, 1024, 0.0);
  util::Rng rng(1);
  const ProbeReport report = prober.probe(0, std::vector<bool>(5, true), rng);
  // payload/time with latency removed recovers the configured bandwidth.
  EXPECT_NEAR(report.beta_bps[1], 80e6, 1e3);
}

TEST(Prober, NoisyProbingIsDeterministicPerSeed) {
  NetworkSpec spec(platform::paper_cluster());
  ClusterProber prober(spec, 1024, 0.1);
  util::Rng a(5), b(5);
  const auto ra = prober.probe(0, std::vector<bool>(5, true), a);
  const auto rb = prober.probe(0, std::vector<bool>(5, true), b);
  EXPECT_EQ(ra.rtt_s, rb.rtt_s);
}

TEST(Prober, RoundCostCoversSlowestPeer) {
  NetworkSpec spec(platform::paper_cluster());
  ClusterProber prober(spec, 1024, 0.0);
  const double cost = prober.round_cost_s(0);
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 0.05);  // probing is cheap (paper: status packets)
}

}  // namespace
}  // namespace hidp::net
