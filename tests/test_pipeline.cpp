// Pipelined steady-state serving: PipelineMode-off bit-identity with the
// batched service path, stage-level occupancy overlapping consecutive
// stream requests, per-model-stream scoping (off-stream models fall back
// to per-request planning), unsupported-strategy fallback, and
// deterministic churn replanning over the survivors.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "core/hidp_strategy.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

using dnn::zoo::ModelId;

std::vector<platform::NodeModel> uniform_cluster(std::size_t n) {
  std::vector<platform::NodeModel> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(platform::make_device("Jetson TX2"));
  return nodes;
}

/// Phase-free two-node strategy without pipeline support (IStrategy's
/// default): PipelineMode must fall back entirely for it.
class TwoNodeStrategy : public IStrategy {
 public:
  std::string name() const override { return "TwoNode"; }
  PlanResult plan(const PlanRequest& request) override {
    const auto& available = request.snapshot.available;
    Plan plan;
    plan.strategy = name();
    plan.leader = request.snapshot.leader;
    PlanTask a;
    a.kind = PlanTask::Kind::kCompute;
    a.node = 0;
    a.proc = 0;
    a.seconds = 0.5;
    a.flops = 1e9;
    plan.tasks.push_back(a);
    if (available.size() > 1 && available[1]) {
      PlanTask b = a;
      b.node = 1;
      plan.tasks.push_back(b);
      plan.nodes_used = 2;
    } else {
      plan.nodes_used = 1;
    }
    return PlanResult{std::move(plan), false};
  }
};

void expect_bit_identical(const std::vector<RequestRecord>& a,
                          const std::vector<RequestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].strategy, b[i].strategy);
    EXPECT_EQ(a[i].mode, b[i].mode);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].nodes_used, b[i].nodes_used);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].dispatch_s, b[i].dispatch_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].finish_s, b[i].finish_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].flops, b[i].flops) << "request " << a[i].id;
  }
}

std::vector<RequestRecord> run_service(const std::vector<RequestSpec>& workload,
                                       ServiceOptions options, ServiceStats* stats = nullptr,
                                       std::vector<TaskTrace>* traces = nullptr,
                                       std::function<void(Cluster&)> churn = nullptr) {
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy strategy;
  InferenceService service(cluster, strategy, 1, options);
  ReplayArrivals arrivals(workload);
  service.attach(&arrivals);
  if (churn) churn(cluster);
  auto records = service.run();
  if (stats != nullptr) *stats = service.stats();
  if (traces != nullptr) *traces = service.traces();
  return records;
}

/// PipelineMode disabled (the default) must keep the service the same
/// computation as the batched path — every new knob inert, including an
/// explicitly set (but disabled) stream target.
TEST(PipelineIdentity, DisabledReproducesBatchedServiceBitIdentically) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kResNet152), 8, 0.05);

  ServiceOptions baseline;
  baseline.max_batch = 2;
  baseline.max_wait_s = 0.01;
  ServiceStats base_stats;
  const auto base_records = run_service(workload, baseline, &base_stats);

  ServiceOptions disabled = baseline;
  disabled.pipeline.enabled = false;
  disabled.pipeline.stream_model = &models.graph(ModelId::kResNet152);
  disabled.adaptive_wait = false;
  disabled.batch_aware_deadline = false;
  ServiceStats off_stats;
  const auto off_records = run_service(workload, disabled, &off_stats);

  expect_bit_identical(base_records, off_records);
  EXPECT_EQ(off_stats.pipelined_requests, 0u);
  EXPECT_EQ(off_stats.pipeline_replans, 0u);
}

/// A strategy without pipeline support makes PipelineMode inert even when
/// enabled: supports_pipeline() gates the whole path.
TEST(PipelineIdentity, UnsupportedStrategyFallsBackBitIdentically) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kEfficientNetB0), 6, 0.1);
  std::vector<std::vector<RequestRecord>> runs;
  for (const bool enabled : {false, true}) {
    Cluster cluster(uniform_cluster(2));
    TwoNodeStrategy strategy;
    ServiceOptions options;
    options.pipeline.enabled = enabled;
    InferenceService service(cluster, strategy, 0, options);
    ReplayArrivals arrivals(workload);
    service.attach(&arrivals);
    runs.push_back(service.run());
    EXPECT_EQ(service.stats().pipelined_requests, 0u);
  }
  expect_bit_identical(runs[0], runs[1]);
}

/// A sustained same-model stream rides one shard-held pipeline plan: one
/// replan, every request pipelined, followers phase-free, and stage-level
/// occupancy overlaps consecutive requests in the traces (request i+1
/// computes while request i is still in flight on a later stage).
TEST(PipelineStream, StreamSharesOnePlanAndOverlapsStages) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kResNet152), 10, 0.02);
  ServiceOptions options;
  options.pipeline.enabled = true;  // auto-pins the stream to ResNet152
  ServiceStats stats;
  std::vector<TaskTrace> traces;
  const auto records = run_service(workload, options, &stats, &traces);

  ASSERT_EQ(records.size(), 10u);
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(record.strategy, "HiDP-pipeline");
  }
  EXPECT_EQ(stats.pipelined_requests, 10u);
  EXPECT_EQ(stats.pipeline_replans, 1u);
  // Followers replay the held plan phase-free: they dispatch at arrival,
  // while the plan payer carries the FSM-phase delay.
  EXPECT_GT(records[0].dispatch_s, records[0].arrival_s);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].dispatch_s, records[i].arrival_s) << "request " << records[i].id;
  }
  // Stage occupancy: some compute interval of a later request overlaps a
  // different request's compute interval on another node — consecutive
  // stream requests occupy different pipeline stages simultaneously.
  bool overlapped = false;
  for (const TaskTrace& a : traces) {
    if (a.kind != PlanTask::Kind::kCompute) continue;
    for (const TaskTrace& b : traces) {
      if (b.kind != PlanTask::Kind::kCompute || a.request == b.request) continue;
      if (a.node == b.node && a.proc == b.proc) continue;
      if (a.start_s < b.end_s && b.start_s < a.end_s) {
        overlapped = true;
        break;
      }
    }
    if (overlapped) break;
  }
  EXPECT_TRUE(overlapped);
}

/// Off-stream models keep per-request planning while the pinned stream
/// rides the pipeline: the stream scoping is per model, not per service.
TEST(PipelineStream, OffStreamModelsFallBackToPerRequestPlanning) {
  ModelSet models;
  const dnn::DnnGraph& stream = models.graph(ModelId::kResNet152);
  const dnn::DnnGraph& other = models.graph(ModelId::kEfficientNetB0);
  std::vector<RequestSpec> workload;
  for (int i = 0; i < 8; ++i) {
    RequestSpec spec;
    spec.id = i;
    spec.model = i % 2 == 0 ? &stream : &other;
    spec.arrival_s = 0.05 * i;
    workload.push_back(spec);
  }
  ServiceOptions options;
  options.pipeline.enabled = true;
  options.pipeline.stream_model = &stream;
  ServiceStats stats;
  const auto records = run_service(workload, options, &stats);

  ASSERT_EQ(records.size(), 8u);
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
    if (record.id % 2 == 0) {
      EXPECT_EQ(record.strategy, "HiDP-pipeline") << "request " << record.id;
    } else {
      EXPECT_EQ(record.strategy, "HiDP") << "request " << record.id;
    }
  }
  EXPECT_EQ(stats.pipelined_requests, 4u);
}

/// Identical seeds reproduce a pipelined run bit-for-bit under node churn,
/// and the churn event drops the held plan: the service replans the
/// pipeline over the survivors and the stream completes with retries, not
/// terminal failures.
TEST(PipelineChurn, DeterministicAndReplansOnSurvivors) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kResNet152), 10, 0.05);
  ServiceOptions options;
  options.pipeline.enabled = true;
  options.max_retries = 2;
  const auto churn = [](Cluster& cluster) {
    cluster.simulator().schedule_at(0.12, [&cluster] {
      cluster.set_node_available(2, false);
    });
  };
  ServiceStats stats_a, stats_b;
  const auto run_a = run_service(workload, options, &stats_a, nullptr, churn);
  const auto run_b = run_service(workload, options, &stats_b, nullptr, churn);

  expect_bit_identical(run_a, run_b);
  EXPECT_EQ(stats_a.retries, stats_b.retries);
  EXPECT_EQ(stats_a.pipeline_replans, stats_b.pipeline_replans);
  ASSERT_EQ(run_a.size(), 10u);
  for (const RequestRecord& record : run_a) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted) << "request " << record.id;
  }
  // The pre-churn plan plus at least one survivor replan.
  EXPECT_GE(stats_a.pipeline_replans, 2u);
  EXPECT_EQ(stats_a.failed, 0u);
}

/// pin_stream() retargets the stream at runtime and drops the held plan:
/// requests for the new target pipeline, the old target reverts to
/// per-request planning.
TEST(PipelineStream, PinStreamRetargetsAndReplans) {
  ModelSet models;
  const dnn::DnnGraph& first = models.graph(ModelId::kResNet152);
  const dnn::DnnGraph& second = models.graph(ModelId::kVgg19);
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy strategy;
  ServiceOptions options;
  options.pipeline.enabled = true;
  options.pipeline.stream_model = &first;
  InferenceService service(cluster, strategy, 1, options);
  EXPECT_EQ(service.pinned_stream(), &first);

  std::vector<RequestSpec> workload = periodic_stream(first, 3, 0.05);
  std::vector<RequestSpec> tail = periodic_stream(second, 3, 0.05);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    tail[i].id = static_cast<int>(3 + i);
    tail[i].arrival_s += 0.5;
    workload.push_back(tail[i]);
  }
  ReplayArrivals arrivals(workload);
  service.attach(&arrivals);
  cluster.simulator().schedule_at(0.4, [&] { service.pin_stream(&second); });
  const auto records = service.run();

  ASSERT_EQ(records.size(), 6u);
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(record.strategy, "HiDP-pipeline") << "request " << record.id;
  }
  EXPECT_EQ(service.pinned_stream(), &second);
  EXPECT_EQ(service.stats().pipelined_requests, 6u);
  // One plan per stream target.
  EXPECT_EQ(service.stats().pipeline_replans, 2u);
}

/// A window large enough to never bind is the same computation as no
/// window: the admission cap only changes behaviour when it saturates.
TEST(PipelineWindow, UnboundWindowIsBitIdenticalToNoWindow) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kResNet152), 10, 0.02);
  ServiceOptions base;
  base.pipeline.enabled = true;
  ServiceOptions wide = base;
  wide.pipeline_window = 64;  // > total requests: can never saturate
  ServiceStats base_stats, wide_stats;
  const auto base_records = run_service(workload, base, &base_stats);
  const auto wide_records = run_service(workload, wide, &wide_stats);
  expect_bit_identical(base_records, wide_records);
  EXPECT_EQ(wide_stats.pipelined_requests, base_stats.pipelined_requests);
}

/// pipeline_window = 1 serializes the stream: at most one pipelined request
/// in flight, so no two requests' compute intervals overlap — the overlap
/// that the unlimited stream test requires is provably absent — and the
/// stream still drains completely in FIFO order.
TEST(PipelineWindow, WindowOfOneSerializesTheStream) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kResNet152), 10, 0.02);
  ServiceOptions options;
  options.pipeline.enabled = true;
  options.pipeline_window = 1;
  ServiceStats stats;
  std::vector<TaskTrace> traces;
  const auto records = run_service(workload, options, &stats, &traces);

  ASSERT_EQ(records.size(), 10u);
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted) << "request " << record.id;
  }
  EXPECT_EQ(stats.pipelined_requests, 10u);
  for (const TaskTrace& a : traces) {
    if (a.kind != PlanTask::Kind::kCompute) continue;
    for (const TaskTrace& b : traces) {
      if (b.kind != PlanTask::Kind::kCompute || a.request == b.request) continue;
      EXPECT_FALSE(a.start_s < b.end_s && b.start_s < a.end_s)
          << "requests " << a.request << " and " << b.request
          << " overlap under window=1";
    }
  }
  // Serialized admission delays later requests past their arrivals.
  ServiceOptions unlimited;
  unlimited.pipeline.enabled = true;
  const auto free_records = run_service(workload, unlimited);
  ASSERT_EQ(free_records.size(), 10u);
  EXPECT_GT(records.back().finish_s, free_records.back().finish_s);
}

/// The window only gates the pipelined stream: off-stream models keep
/// planning per request even when the window is saturated.
TEST(PipelineWindow, OffStreamModelsBypassTheWindow) {
  ModelSet models;
  const dnn::DnnGraph& stream = models.graph(ModelId::kResNet152);
  const dnn::DnnGraph& other = models.graph(ModelId::kEfficientNetB0);
  std::vector<RequestSpec> workload;
  for (int i = 0; i < 8; ++i) {
    RequestSpec spec;
    spec.id = i;
    spec.model = i % 2 == 0 ? &stream : &other;
    spec.arrival_s = 0.01 * i;
    workload.push_back(spec);
  }
  ServiceOptions options;
  options.pipeline.enabled = true;
  options.pipeline.stream_model = &stream;
  options.pipeline_window = 1;
  ServiceStats stats;
  const auto records = run_service(workload, options, &stats);
  ASSERT_EQ(records.size(), 8u);
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted) << "request " << record.id;
    if (record.id % 2 == 0) {
      EXPECT_EQ(record.strategy, "HiDP-pipeline") << "request " << record.id;
    } else {
      EXPECT_EQ(record.strategy, "HiDP") << "request " << record.id;
    }
  }
  EXPECT_EQ(stats.pipelined_requests, 4u);
}

}  // namespace
}  // namespace hidp::runtime
