// Unit tests for the DnnGraph container.
#include <gtest/gtest.h>

#include "dnn/graph.hpp"

namespace hidp::dnn {
namespace {

DnnGraph small_graph() {
  DnnGraph g("small");
  int x = g.add_input(3, 16, 16);
  x = g.conv(x, 8, 3, 1, true, Activation::kRelu, "c1");
  int a = g.conv(x, 8, 3, 1, true, Activation::kNone, "c2");
  x = g.add({a, x}, Activation::kRelu, "res");
  x = g.global_avg_pool(x);
  x = g.dense(x, 10);
  g.softmax(x);
  return g;
}

TEST(Graph, BuildsWithConsecutiveIds) {
  const DnnGraph g = small_graph();
  EXPECT_EQ(g.size(), 7u);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g.layer(static_cast<int>(i)).id, static_cast<int>(i));
  g.check_invariants();
}

TEST(Graph, InputMustBeFirst) {
  DnnGraph g;
  EXPECT_THROW(g.conv(0, 8, 3, 1, true), std::invalid_argument);
  g.add_input(3, 8, 8);
  EXPECT_THROW(g.add_input(3, 8, 8), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeInputs) {
  DnnGraph g;
  g.add_input(3, 8, 8);
  EXPECT_THROW(g.conv(5, 8, 3, 1, true), std::invalid_argument);
  EXPECT_THROW(g.conv(-1, 8, 3, 1, true), std::invalid_argument);
}

TEST(Graph, ConsumersTracked) {
  const DnnGraph g = small_graph();
  // layer 1 (c1) feeds c2 and the residual add
  EXPECT_EQ(g.consumers(1).size(), 2u);
  EXPECT_TRUE(g.consumers(6).empty());  // softmax is terminal
}

TEST(Graph, TotalFlopsIsSumOfLayers) {
  const DnnGraph g = small_graph();
  double sum = 0.0;
  for (const Layer& l : g.layers()) sum += l.flops;
  EXPECT_DOUBLE_EQ(g.total_flops(), sum);
  EXPECT_DOUBLE_EQ(g.range_flops(0, static_cast<int>(g.size())), sum);
}

TEST(Graph, RangeFlopsSubrange) {
  const DnnGraph g = small_graph();
  EXPECT_DOUBLE_EQ(g.range_flops(1, 3), g.layer(1).flops + g.layer(2).flops);
  EXPECT_DOUBLE_EQ(g.range_flops(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(g.range_flops(-5, 2), g.layer(0).flops + g.layer(1).flops);
}

TEST(Graph, RangeWeightBytes) {
  const DnnGraph g = small_graph();
  EXPECT_EQ(g.range_weight_bytes(0, static_cast<int>(g.size())), g.total_weight_bytes());
}

TEST(Graph, SpatialPrefixStopsAtGlobalPool) {
  const DnnGraph g = small_graph();
  EXPECT_EQ(g.spatial_prefix_end(), 4);  // layers 0..3 are spatially local
}

TEST(Graph, InputShapeAndOutputShape) {
  const DnnGraph g = small_graph();
  EXPECT_EQ(g.input_shape(), (Shape{3, 16, 16}));
  EXPECT_EQ(g.output_shape(), (Shape{10, 1, 1}));
}

TEST(Graph, OutputBytesScaleWithElementSize) {
  const DnnGraph g = small_graph();
  EXPECT_EQ(g.output_bytes(0, 4), 3L * 16 * 16 * 4);
  EXPECT_EQ(g.output_bytes(0, 2), 3L * 16 * 16 * 2);
}

TEST(Graph, AutoNamesGenerated) {
  DnnGraph g;
  int x = g.add_input(3, 8, 8);
  x = g.conv(x, 4, 3, 1, true);
  EXPECT_FALSE(g.layer(x).name.empty());
}

TEST(Graph, SummarizeMentionsNameAndLayers) {
  const DnnGraph g = small_graph();
  const std::string s = summarize(g, 3);
  EXPECT_NE(s.find("small"), std::string::npos);
  EXPECT_NE(s.find("7 layers"), std::string::npos);
}

TEST(Graph, SqueezeExciteBuilder) {
  DnnGraph g;
  int x = g.add_input(8, 8, 8);
  x = g.squeeze_excite(x, 2, "se");
  EXPECT_EQ(g.layer(x).output, (Shape{8, 8, 8}));
  EXPECT_GT(g.layer(x).flops, 0.0);
  EXPECT_GT(g.layer(x).weight_bytes, 0);
  EXPECT_EQ(g.spatial_prefix_end(), 2);  // SE keeps the prefix alive
}

}  // namespace
}  // namespace hidp::dnn
