// Unit tests for processor/node models, efficiency tables, and power.
#include <gtest/gtest.h>

#include "dnn/zoo/zoo.hpp"
#include "platform/device_db.hpp"
#include "platform/power.hpp"

namespace hidp::platform {
namespace {

using dnn::LayerKind;

WorkProfile conv_profile(double gflops) {
  WorkProfile p;
  p.add(LayerKind::kConv2D, gflops * 1e9);
  return p;
}

TEST(WorkProfile, FromGraphSumsToTotal) {
  const auto g = dnn::zoo::build_efficientnet_b0(64, 10);
  const WorkProfile p = WorkProfile::from_graph(g);
  EXPECT_NEAR(p.total(), g.total_flops(), g.total_flops() * 1e-12);
  EXPECT_GT(p.flops_of(LayerKind::kDepthwiseConv2D), 0.0);
  EXPECT_GT(p.flops_of(LayerKind::kSqueezeExcite), 0.0);
}

TEST(WorkProfile, ScaleAndDifference) {
  WorkProfile p = conv_profile(10.0);
  p.add(LayerKind::kDense, 2e9);
  const WorkProfile half = p.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.total(), p.total() / 2.0);
  const WorkProfile diff = WorkProfile::difference(p, half);
  EXPECT_DOUBLE_EQ(diff.total(), p.total() / 2.0);
  EXPECT_DOUBLE_EQ(diff.flops_of(LayerKind::kDense), 1e9);
}

TEST(WorkProfile, RangeProfileMatchesPrefixDifference) {
  const auto g = dnn::zoo::build_vgg19(64, 10);
  const WorkProfile whole = WorkProfile::from_graph(g, 0, -1);
  const WorkProfile first = WorkProfile::from_graph(g, 0, 10);
  const WorkProfile rest = WorkProfile::from_graph(g, 10, -1);
  EXPECT_NEAR(first.total() + rest.total(), whole.total(), whole.total() * 1e-12);
}

TEST(Processor, PeakGflops) {
  const ProcessorModel p("gpu", ProcKind::kGpu, 256, 1.3, 2.0, 0.5, 9.5, 0.45, 0.85);
  EXPECT_NEAR(p.peak_gflops(), 256 * 1.3 * 2.0, 1e-9);
}

TEST(Processor, UtilizationCurveRises) {
  const ProcessorModel p("gpu", ProcKind::kGpu, 256, 1.3, 2.0, 0.5, 9.5, 0.45, 0.85);
  EXPECT_DOUBLE_EQ(p.utilization(1), 0.45);
  EXPECT_NEAR(p.utilization(2), 0.65, 1e-9);
  EXPECT_NEAR(p.utilization(4), 0.75, 1e-9);
  EXPECT_LT(p.utilization(64), 0.85);
  EXPECT_GT(p.utilization(4), p.utilization(2));
}

TEST(Processor, TimeScalesInverselyWithPartitions) {
  const ProcessorModel p("gpu", ProcKind::kGpu, 256, 1.3, 2.0, 0.5, 9.5, 0.45, 0.85);
  const WorkProfile w = conv_profile(10.0);
  EXPECT_GT(p.time_for(w, 1), p.time_for(w, 4));
  EXPECT_GT(p.lambda_gflops(w, 4), p.lambda_gflops(w, 1));
}

TEST(Processor, DepthwiseHurtsGpuMoreThanCpu) {
  const ProcessorModel gpu("gpu", ProcKind::kGpu, 256, 1.3, 2.0, 0.5, 9.5, 1.0, 1.0);
  const ProcessorModel cpu("cpu", ProcKind::kCpuBig, 4, 2.0, 8.0, 0.3, 4.0, 1.0, 1.0);
  WorkProfile conv = conv_profile(1.0);
  WorkProfile dw;
  dw.add(LayerKind::kDepthwiseConv2D, 1e9);
  // Relative slowdown moving conv -> depthwise is far worse on the GPU.
  const double gpu_ratio = gpu.time_for(dw) / gpu.time_for(conv);
  const double cpu_ratio = cpu.time_for(dw) / cpu.time_for(conv);
  EXPECT_GT(gpu_ratio, 2.0 * cpu_ratio);
}

TEST(Processor, ZeroEfficiencyMeansInfeasible) {
  ProcessorModel p("gpu", ProcKind::kGpu, 256, 1.3, 2.0, 0.5, 9.5, 1.0, 1.0);
  WorkProfile w;
  w.add(LayerKind::kInput, 1e9);  // no efficiency entry -> infeasible
  EXPECT_GE(p.time_for(w), 1e29);
  EXPECT_DOUBLE_EQ(p.lambda_gflops(w), 0.0);
}

TEST(Node, LambdaSumsProcessors) {
  const NodeModel tx2 = make_jetson_tx2();
  const WorkProfile w = conv_profile(10.0);
  double sum = 0.0;
  for (const auto& p : tx2.processors()) sum += p.lambda_gflops(w, 1);
  EXPECT_NEAR(tx2.lambda_total_gflops(w, 1), sum, 1e-9);
}

TEST(Node, GpuIndexAndFastest) {
  const NodeModel tx2 = make_jetson_tx2();
  EXPECT_LT(tx2.gpu_index(), tx2.processor_count());
  EXPECT_EQ(tx2.processor(tx2.gpu_index()).kind(), ProcKind::kGpu);
  // On the TX2 the GPU is the fastest processor for conv workloads.
  EXPECT_EQ(tx2.fastest_processor(conv_profile(1.0)), tx2.gpu_index());
}

TEST(Node, RaspberryPiCpuBeatsGpu) {
  // The paper's motivation: some edge platforms run DNNs faster on CPU.
  const NodeModel rpi5 = make_raspberry_pi5();
  const WorkProfile w = conv_profile(1.0);
  EXPECT_NE(rpi5.fastest_processor(w), rpi5.gpu_index());
}

TEST(Node, PsiRanksByRate) {
  const NodeModel tx2 = make_jetson_tx2();
  const auto psi = tx2.psi(conv_profile(1.0));
  ASSERT_EQ(psi.size(), tx2.processor_count());
  for (double v : psi) EXPECT_GT(v, 0.0);
}

TEST(Node, LocalExchangeScalesWithBytes) {
  const NodeModel nano = make_jetson_nano();
  EXPECT_DOUBLE_EQ(nano.local_exchange_s(0), 0.0);
  EXPECT_GT(nano.local_exchange_s(1 << 20), 0.0);
  EXPECT_NEAR(nano.local_exchange_s(2 << 20), 2.0 * nano.local_exchange_s(1 << 20), 1e-12);
}

TEST(DeviceDb, TableIIRoster) {
  const auto cluster = paper_cluster();
  ASSERT_EQ(cluster.size(), 5u);
  EXPECT_EQ(cluster[0].name(), "Jetson Orin NX");
  EXPECT_EQ(cluster[1].name(), "Jetson TX2");
  EXPECT_EQ(cluster[2].name(), "Jetson Nano");
  EXPECT_EQ(cluster[3].name(), "Raspberry Pi 5");
  EXPECT_EQ(cluster[4].name(), "Raspberry Pi 4");
  // TX2 models its two CPU clusters separately (Denver2 + A57) + GPU.
  EXPECT_EQ(cluster[1].processor_count(), 3u);
}

TEST(DeviceDb, SubsetSelection) {
  EXPECT_EQ(paper_cluster(2).size(), 2u);
  EXPECT_EQ(paper_cluster(99).size(), 5u);
}

TEST(DeviceDb, MakeDeviceByNameAndUnknownThrows) {
  EXPECT_EQ(make_device("Jetson TX2").name(), "Jetson TX2");
  EXPECT_THROW(make_device("Jetson AGX"), std::invalid_argument);
}

TEST(DeviceDb, HeterogeneityOrdering) {
  // Orin NX must dominate; RPi4 is the weakest (paper Table II ordering).
  const auto cluster = paper_cluster();
  const WorkProfile w = conv_profile(1.0);
  const double orin = cluster[0].lambda_total_gflops(w, 4);
  const double rpi4 = cluster[4].lambda_total_gflops(w, 4);
  EXPECT_GT(orin, 10.0 * rpi4);
}

TEST(Power, EnergyDecomposes) {
  const NodeModel nano = make_jetson_nano();
  const std::vector<double> busy{1.0, 0.5};  // gpu 1s, cpu 0.5s
  const EnergyBreakdown e = node_energy(nano, busy, 2.0);
  EXPECT_GT(e.active_j, 0.0);
  EXPECT_GT(e.idle_j, 0.0);
  EXPECT_DOUBLE_EQ(e.static_j, nano.board_static_w() * 2.0);
  EXPECT_NEAR(e.total_j(), e.active_j + e.idle_j + e.static_j, 1e-12);
}

TEST(Power, BusyClampedToHorizon) {
  const NodeModel nano = make_jetson_nano();
  const EnergyBreakdown a = node_energy(nano, {10.0, 10.0}, 2.0);
  const EnergyBreakdown b = node_energy(nano, {2.0, 2.0}, 2.0);
  EXPECT_DOUBLE_EQ(a.total_j(), b.total_j());
}

TEST(Power, ZeroHorizonZeroEnergy) {
  const NodeModel nano = make_jetson_nano();
  EXPECT_DOUBLE_EQ(node_energy(nano, {1.0}, 0.0).total_j(), 0.0);
}

TEST(Power, AveragePowerConsistent) {
  const NodeModel rpi4 = make_raspberry_pi4();
  const std::vector<double> busy{0.5, 0.5};
  const double avg = node_average_power_w(rpi4, busy, 1.0);
  EXPECT_NEAR(avg, node_energy(rpi4, busy, 1.0).total_j(), 1e-12);
}

TEST(WorkClass, ClassifiesLayers) {
  dnn::Layer conv;
  conv.kind = dnn::LayerKind::kConv2D;
  conv.params.kernel = 3;
  conv.output = dnn::Shape{64, 28, 28};
  EXPECT_EQ(classify_layer(conv), WorkClass::kRegular);
  conv.output = dnn::Shape{64, 14, 14};
  EXPECT_EQ(classify_layer(conv), WorkClass::kSmallSpatial);
  conv.params.kernel_w = 7;
  conv.params.kernel = 1;
  EXPECT_EQ(classify_layer(conv), WorkClass::kAwkwardKernel);
}

TEST(WorkClass, AwkwardKernelsSlowGpuOnly) {
  const ProcessorModel gpu("gpu", ProcKind::kGpu, 256, 1.3, 2.0, 0.5, 9.5, 1.0, 1.0);
  WorkProfile regular, awkward;
  regular.add(LayerKind::kConv2D, 1e9, WorkClass::kRegular);
  awkward.add(LayerKind::kConv2D, 1e9, WorkClass::kAwkwardKernel);
  EXPECT_GT(gpu.time_for(awkward), 3.0 * gpu.time_for(regular));
  const ProcessorModel cpu("cpu", ProcKind::kCpuBig, 4, 2.0, 8.0, 0.3, 4.0, 1.0, 1.0);
  EXPECT_LT(cpu.time_for(awkward), 1.3 * cpu.time_for(regular));
}

TEST(Dispatch, OverheadAmortisedByPartitions) {
  const ProcessorModel gpu("gpu", ProcKind::kGpu, 256, 1.3, 2.0, 0.5, 9.5, 1.0, 1.0,
                           /*dispatch_s=*/200e-6);
  WorkProfile many_layers;
  for (int i = 0; i < 100; ++i) many_layers.add(LayerKind::kConv2D, 1e6);
  EXPECT_DOUBLE_EQ(many_layers.layer_count(), 100.0);
  const double t1 = gpu.time_for(many_layers, 1);
  const double t4 = gpu.time_for(many_layers, 4);
  // 100 layers x 200us = 20 ms dispatch dominates and shrinks ~4x.
  EXPECT_GT(t1, 0.020);
  EXPECT_LT(t4, t1 * 0.4);
}

TEST(Dispatch, ScaledProfileScalesLayerCount) {
  WorkProfile w;
  for (int i = 0; i < 10; ++i) w.add(LayerKind::kConv2D, 1e6);
  EXPECT_DOUBLE_EQ(w.scaled(0.3).layer_count(), 3.0);
  WorkProfile other;
  other.add(LayerKind::kDense, 1e6);
  w.merge(other);
  EXPECT_DOUBLE_EQ(w.layer_count(), 11.0);
}

TEST(Power, IdleFloorSumsRails) {
  const NodeModel nano = make_jetson_nano();
  double expected = nano.board_static_w();
  for (const auto& p : nano.processors()) expected += p.idle_w();
  EXPECT_DOUBLE_EQ(node_idle_power_w(nano), expected);
}

}  // namespace
}  // namespace hidp::platform
