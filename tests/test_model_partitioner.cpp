// Model partitioner: block structure, transfers, engines, objectives.
#include <gtest/gtest.h>

#include "dnn/zoo/zoo.hpp"
#include "partition/model_partitioner.hpp"
#include "platform/device_db.hpp"

namespace hidp::partition {
namespace {

struct Fixture {
  dnn::DnnGraph graph = dnn::zoo::build_resnet152();
  std::vector<platform::NodeModel> nodes = platform::paper_cluster();
  net::NetworkSpec network{nodes};
  ClusterCostModel cost{graph, nodes, network, NodeExecutionPolicy::kHierarchicalLocal};
};

TEST(ModelPartitioner, BlocksTileTheNetwork) {
  Fixture f;
  const auto result = plan_model_partition(f.cost, {0, 1, 2}, 0,
                                           PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(result.valid);
  ASSERT_FALSE(result.blocks.empty());
  EXPECT_EQ(result.blocks.front().begin_layer, 0);
  EXPECT_EQ(result.blocks.back().end_layer, static_cast<int>(f.graph.size()));
  for (std::size_t i = 1; i < result.blocks.size(); ++i) {
    EXPECT_EQ(result.blocks[i].begin_layer, result.blocks[i - 1].end_layer);
  }
}

TEST(ModelPartitioner, LatencyAndBottleneckPopulated) {
  Fixture f;
  const auto result = plan_model_partition(f.cost, {0, 1}, 0,
                                           PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.latency_s, 0.0);
  EXPECT_GT(result.bottleneck_s, 0.0);
  EXPECT_LE(result.bottleneck_s, result.latency_s + 1e-12);
}

TEST(ModelPartitioner, SingleWorkerDegenerates) {
  Fixture f;
  const auto result = plan_model_partition(f.cost, {1}, 1,
                                           PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(result.valid);
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].node, 1u);
  EXPECT_NEAR(result.latency_s, f.cost.node_time(1, 0, static_cast<int>(f.cost.segment_count())),
              1e-12);
}

TEST(ModelPartitioner, RemoteLeaderPaysShipping) {
  Fixture f;
  // Run everything on node 1 while the leader is node 0: the stage must
  // include input + logits shipping.
  const auto remote = plan_model_partition(f.cost, {1}, 0, PartitionObjective::kMinimizeSum);
  const auto local = plan_model_partition(f.cost, {1}, 1, PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(remote.valid && local.valid);
  const double shipping = f.cost.transfer_s(0, 1, f.cost.boundary_bytes(0)) +
                          f.cost.transfer_s(1, 0, f.graph.output_shape().bytes(4));
  EXPECT_NEAR(remote.latency_s - local.latency_s, shipping, 1e-9);
}

TEST(ModelPartitioner, BottleneckObjectiveSplitsMore) {
  Fixture f;
  const auto sum = plan_model_partition(f.cost, {0, 1, 2, 3, 4}, 0,
                                        PartitionObjective::kMinimizeSum);
  const auto bottleneck = plan_model_partition(f.cost, {0, 1, 2, 3, 4}, 0,
                                               PartitionObjective::kMinimizeBottleneck);
  ASSERT_TRUE(sum.valid && bottleneck.valid);
  EXPECT_GE(bottleneck.blocks.size(), sum.blocks.size());
  EXPECT_LE(bottleneck.bottleneck_s, sum.bottleneck_s + 1e-12);
}

TEST(ModelPartitioner, GreedyEngineValidAndComparable) {
  Fixture f;
  const auto dp = plan_model_partition(f.cost, {0, 1, 2}, 0,
                                       PartitionObjective::kMinimizeSum,
                                       SearchEngine::kExactDp);
  const auto greedy = plan_model_partition(f.cost, {0, 1, 2}, 0,
                                           PartitionObjective::kMinimizeSum,
                                           SearchEngine::kGreedyBackprop);
  ASSERT_TRUE(dp.valid && greedy.valid);
  EXPECT_GE(greedy.latency_s, dp.latency_s - 1e-12);
  EXPECT_LE(greedy.latency_s, dp.latency_s * 2.0);  // heuristic quality bound
}

TEST(ModelPartitioner, LocalDecisionsAttached) {
  Fixture f;
  const auto result = plan_model_partition(f.cost, {0, 1}, 0,
                                           PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(result.valid);
  for (const auto& block : result.blocks) {
    EXPECT_FALSE(block.local.config.shares.empty());
    EXPECT_GT(block.stage_s, 0.0);
    EXPECT_GT(block.in_bytes, 0);
  }
}

TEST(ModelPartitioner, EmptyWorkersInvalid) {
  Fixture f;
  EXPECT_FALSE(plan_model_partition(f.cost, {}, 0, PartitionObjective::kMinimizeSum).valid);
}

}  // namespace
}  // namespace hidp::partition
