// Unit tests for layer shape inference, FLOP formulas and weight sizes.
#include <gtest/gtest.h>

#include "dnn/layer.hpp"

namespace hidp::dnn {
namespace {

LayerParams conv_params(int k, int s, bool same, int out_c, int kw = 0) {
  LayerParams p;
  p.kernel = k;
  p.kernel_w = kw;
  p.stride = s;
  p.same_padding = same;
  p.out_channels = out_c;
  return p;
}

TEST(ShapeInference, ConvValid) {
  const Shape out = infer_output_shape(LayerKind::kConv2D, conv_params(3, 1, false, 16),
                                       {Shape{3, 32, 32}});
  EXPECT_EQ(out, (Shape{16, 30, 30}));
}

TEST(ShapeInference, ConvSameStride1) {
  const Shape out = infer_output_shape(LayerKind::kConv2D, conv_params(3, 1, true, 16),
                                       {Shape{3, 32, 32}});
  EXPECT_EQ(out, (Shape{16, 32, 32}));
}

TEST(ShapeInference, ConvSameStride2CeilDiv) {
  const Shape out = infer_output_shape(LayerKind::kConv2D, conv_params(3, 2, true, 8),
                                       {Shape{3, 33, 33}});
  EXPECT_EQ(out, (Shape{8, 17, 17}));
}

TEST(ShapeInference, AsymmetricKernel1x7) {
  const Shape out = infer_output_shape(LayerKind::kConv2D, conv_params(1, 1, true, 64, 7),
                                       {Shape{32, 17, 17}});
  EXPECT_EQ(out, (Shape{64, 17, 17}));
}

TEST(ShapeInference, DepthwisePreservesChannels) {
  const Shape out = infer_output_shape(LayerKind::kDepthwiseConv2D, conv_params(3, 2, true, 0),
                                       {Shape{24, 56, 56}});
  EXPECT_EQ(out, (Shape{24, 28, 28}));
}

TEST(ShapeInference, PoolValid) {
  const Shape out = infer_output_shape(LayerKind::kMaxPool2D, conv_params(2, 2, false, 0),
                                       {Shape{64, 224, 224}});
  EXPECT_EQ(out, (Shape{64, 112, 112}));
}

TEST(ShapeInference, GlobalPoolDenseFlatten) {
  EXPECT_EQ(infer_output_shape(LayerKind::kGlobalAvgPool, {}, {Shape{128, 7, 7}}),
            (Shape{128, 1, 1}));
  LayerParams dense;
  dense.out_channels = 10;
  EXPECT_EQ(infer_output_shape(LayerKind::kDense, dense, {Shape{128, 1, 1}}), (Shape{10, 1, 1}));
  EXPECT_EQ(infer_output_shape(LayerKind::kFlatten, {}, {Shape{2, 3, 4}}), (Shape{24, 1, 1}));
}

TEST(ShapeInference, AddRequiresMatchingShapes) {
  EXPECT_THROW(infer_output_shape(LayerKind::kAdd, {}, {Shape{8, 4, 4}, Shape{8, 5, 4}}),
               std::invalid_argument);
  EXPECT_EQ(infer_output_shape(LayerKind::kAdd, {}, {Shape{8, 4, 4}, Shape{8, 4, 4}}),
            (Shape{8, 4, 4}));
}

TEST(ShapeInference, ConcatSumsChannels) {
  EXPECT_EQ(infer_output_shape(LayerKind::kConcat, {}, {Shape{8, 4, 4}, Shape{16, 4, 4}}),
            (Shape{24, 4, 4}));
  EXPECT_THROW(infer_output_shape(LayerKind::kConcat, {}, {Shape{8, 4, 4}, Shape{8, 5, 4}}),
               std::invalid_argument);
}

TEST(ShapeInference, SqueezeExcitePreservesShape) {
  EXPECT_EQ(infer_output_shape(LayerKind::kSqueezeExcite, {}, {Shape{40, 28, 28}}),
            (Shape{40, 28, 28}));
}

TEST(ShapeInference, RejectsBadArity) {
  EXPECT_THROW(infer_output_shape(LayerKind::kConv2D, conv_params(3, 1, true, 8), {}),
               std::invalid_argument);
  EXPECT_THROW(infer_output_shape(LayerKind::kAdd, {}, {Shape{8, 4, 4}}), std::invalid_argument);
}

TEST(ShapeInference, KernelLargerThanInputThrows) {
  EXPECT_THROW(infer_output_shape(LayerKind::kConv2D, conv_params(7, 1, false, 8),
                                  {Shape{3, 4, 4}}),
               std::invalid_argument);
}

TEST(Flops, ConvClosedForm) {
  const LayerParams p = conv_params(3, 1, true, 16);
  const Shape in{8, 10, 10};
  const Shape out = infer_output_shape(LayerKind::kConv2D, p, {in});
  // 2*k*k*cin*cout*oh*ow + bias(out elems)
  const double expected = 2.0 * 9 * 8 * 16 * 10 * 10 + 16 * 10 * 10;
  EXPECT_DOUBLE_EQ(layer_flops(LayerKind::kConv2D, p, {in}, out), expected);
}

TEST(Flops, DepthwiseClosedForm) {
  const LayerParams p = conv_params(3, 1, true, 0);
  const Shape in{8, 10, 10};
  const Shape out = infer_output_shape(LayerKind::kDepthwiseConv2D, p, {in});
  EXPECT_DOUBLE_EQ(layer_flops(LayerKind::kDepthwiseConv2D, p, {in}, out),
                   2.0 * 9 * 8 * 10 * 10 + 8 * 10 * 10);
}

TEST(Flops, DenseClosedForm) {
  LayerParams p;
  p.out_channels = 100;
  const Shape in{512, 1, 1};
  const Shape out{100, 1, 1};
  EXPECT_DOUBLE_EQ(layer_flops(LayerKind::kDense, p, {in}, out), 2.0 * 512 * 100 + 100);
}

TEST(Flops, FusedActivationAddsWork) {
  LayerParams relu = conv_params(1, 1, true, 8);
  relu.activation = Activation::kRelu;
  LayerParams none = conv_params(1, 1, true, 8);
  const Shape in{8, 4, 4};
  const Shape out = infer_output_shape(LayerKind::kConv2D, relu, {in});
  EXPECT_GT(layer_flops(LayerKind::kConv2D, relu, {in}, out),
            layer_flops(LayerKind::kConv2D, none, {in}, out));
}

TEST(Flops, ConcatIsFree) {
  EXPECT_DOUBLE_EQ(layer_flops(LayerKind::kConcat, {}, {Shape{8, 4, 4}, Shape{8, 4, 4}},
                               Shape{16, 4, 4}),
                   0.0);
}

TEST(Weights, ConvBytes) {
  const LayerParams p = conv_params(3, 1, true, 16);
  EXPECT_EQ(layer_weight_bytes(LayerKind::kConv2D, p, {Shape{8, 10, 10}}),
            (9L * 8 * 16 + 16) * 4);
}

TEST(Weights, AsymmetricConvBytes) {
  const LayerParams p = conv_params(7, 1, true, 192, 1);  // 7x1 kernel
  EXPECT_EQ(layer_weight_bytes(LayerKind::kConv2D, p, {Shape{192, 17, 17}}),
            (7L * 1 * 192 * 192 + 192) * 4);
}

TEST(Weights, NonWeightLayersZero) {
  EXPECT_EQ(layer_weight_bytes(LayerKind::kMaxPool2D, conv_params(2, 2, false, 0),
                               {Shape{8, 4, 4}}),
            0);
  EXPECT_EQ(layer_weight_bytes(LayerKind::kSoftmax, {}, {Shape{10, 1, 1}}), 0);
}

TEST(Kinds, SpatialLocality) {
  EXPECT_TRUE(is_spatially_local(LayerKind::kConv2D));
  EXPECT_TRUE(is_spatially_local(LayerKind::kSqueezeExcite));
  EXPECT_FALSE(is_spatially_local(LayerKind::kDense));
  EXPECT_FALSE(is_spatially_local(LayerKind::kGlobalAvgPool));
  EXPECT_FALSE(is_spatially_local(LayerKind::kFlatten));
}

TEST(Kinds, NamesAreUnique) {
  std::vector<std::string> names;
  for (int k = 0; k < kLayerKindCount; ++k) {
    names.emplace_back(layer_kind_name(static_cast<LayerKind>(k)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Padding, SameResolvesPerAxis) {
  LayerParams p = conv_params(1, 1, true, 64, 7);  // 1x7
  EXPECT_EQ(resolved_padding(p, 17), 0);    // kernel height 1
  EXPECT_EQ(resolved_padding_w(p, 17), 3);  // kernel width 7
}

}  // namespace
}  // namespace hidp::dnn
