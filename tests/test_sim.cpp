// Unit tests for the discrete-event simulator and FIFO resources.
#include <gtest/gtest.h>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace hidp::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoAmongSimultaneousEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(4.0, [&] {
    sim.schedule_at(1.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel rejected
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, NextEventAtReportsEarliestPending) {
  Simulator sim;
  EXPECT_FALSE(sim.next_event_at().has_value());
  sim.schedule_at(2.0, [] {});
  sim.schedule_at(1.0, [] {});
  ASSERT_TRUE(sim.next_event_at().has_value());
  EXPECT_DOUBLE_EQ(*sim.next_event_at(), 1.0);
  sim.run();
  EXPECT_FALSE(sim.next_event_at().has_value());
}

TEST(Simulator, PumpFeedsExternalWorkAndEndsTheRun) {
  // The pump is consulted before every event and when the queue drains;
  // returning false is the only way a pumped run ends.
  Simulator sim;
  int pumps = 0;
  std::vector<double> fired;
  sim.set_pump([&] {
    ++pumps;
    if (pumps == 1) sim.schedule_at(1.0, [&] { fired.push_back(sim.now()); });
    return pumps < 3;
  });
  sim.run();
  sim.set_pump(nullptr);
  EXPECT_EQ(pumps, 3);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
}

TEST(Simulator, ExplicitVirtualClockMatchesDefaultTimeline) {
  // set_clock with an external VirtualClock keeps pure DES semantics;
  // set_clock(nullptr) restores the built-in clock.
  Simulator sim;
  VirtualClock clock;
  sim.set_clock(&clock);
  std::vector<double> fired;
  sim.schedule_at(0.5, [&] { fired.push_back(sim.now()); });
  sim.schedule_in(1.25, [&] { fired.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 0.5);
  EXPECT_DOUBLE_EQ(fired[1], 1.25);
  EXPECT_DOUBLE_EQ(clock.now(), 1.25);  // the external clock carried the timeline
  sim.set_clock(nullptr);
  sim.schedule_in(0.25, [&] { fired.push_back(sim.now()); });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(Resource, SerializesJobs) {
  Simulator sim;
  Resource r(sim, "proc");
  std::vector<double> ends;
  r.submit(0.0, 2.0, [&](Time t) { ends.push_back(t); });
  r.submit(0.0, 3.0, [&](Time t) { ends.push_back(t); });
  sim.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_DOUBLE_EQ(ends[0], 2.0);
  EXPECT_DOUBLE_EQ(ends[1], 5.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(r.busy_time(), 5.0);
}

TEST(Resource, RespectsEarliestStart) {
  Simulator sim;
  Resource r(sim, "proc");
  double end = 0.0;
  r.submit(4.0, 1.0, [&](Time t) { end = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(end, 5.0);
  ASSERT_EQ(r.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(r.intervals()[0].start, 4.0);
}

TEST(Resource, UtilizationOverHorizon) {
  Simulator sim;
  Resource r(sim, "proc");
  r.submit(0.0, 2.0, nullptr);
  sim.run();
  EXPECT_DOUBLE_EQ(r.utilization(4.0), 0.5);
  EXPECT_DOUBLE_EQ(r.utilization(0.0), 0.0);
}

TEST(Resource, ZeroDurationJobCompletes) {
  Simulator sim;
  Resource r(sim, "proc");
  bool done = false;
  r.submit(0.0, 0.0, [&](Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Resource, NextFreeTracksBacklog) {
  Simulator sim;
  Resource r(sim, "proc");
  r.submit(0.0, 3.0, nullptr);
  EXPECT_DOUBLE_EQ(r.next_free(0.0), 3.0);
  EXPECT_DOUBLE_EQ(r.next_free(10.0), 10.0);
}

}  // namespace
}  // namespace hidp::sim
