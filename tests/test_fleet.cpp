// ServiceFleet: shard construction/validation, routing policies,
// cross-shard work stealing, fleet-level arrival sources (determinism and
// closed-loop liveness), throughput scaling with shard count, node-churn
// failover (evacuation, route-around, orphan merging, reassign), and
// cost-aware stealing for unlimited-admission shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/hidp_strategy.hpp"
#include "runtime/churn.hpp"
#include "runtime/fleet.hpp"
#include "runtime/metrics.hpp"
#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

using dnn::zoo::ModelId;

/// Deterministic shard-local strategy: one compute task of `seconds` on
/// the shard's leader node — each shard exercises only its own resources.
class LeaderLocalStrategy : public IStrategy {
 public:
  explicit LeaderLocalStrategy(double seconds) : seconds_(seconds) {}
  std::string name() const override { return "LeaderLocal"; }
  PlanResult plan(const PlanRequest& request) override {
    Plan plan;
    plan.strategy = name();
    plan.leader = request.snapshot.leader;
    PlanTask task;
    task.kind = PlanTask::Kind::kCompute;
    task.node = request.snapshot.leader;
    task.proc = 0;
    task.seconds = seconds_;
    task.flops = 1e9;
    plan.tasks.push_back(task);
    plan.nodes_used = 1;
    return PlanResult{std::move(plan), false};
  }

 private:
  double seconds_;
};

/// Skew generator: every request to shard 0 regardless of load.
class AllToZeroRouting : public RoutingPolicy {
 public:
  std::string_view name() const override { return "all-to-zero"; }
  std::size_t route(const RequestSpec&, const ServiceFleet&) override { return 0; }
  bool routes_on_arrival() const override { return false; }
};

std::vector<platform::NodeModel> uniform_cluster(std::size_t n) {
  std::vector<platform::NodeModel> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(platform::make_device("Jetson TX2"));
  return nodes;
}

TEST(FleetConstruction, RejectsInvalidTopologies) {
  ModelSet models;
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.1), b(0.1);
  RoundRobinRouting routing;
  // Overlapping node sets.
  EXPECT_THROW(ServiceFleet(cluster, {{&a, {0, 1}}, {&b, {1, 2}}}, routing),
               std::invalid_argument);
  // Shared strategy instance between shards.
  EXPECT_THROW(ServiceFleet(cluster, {{&a, {0, 1}}, {&a, {2, 3}}}, routing),
               std::invalid_argument);
  // Whole-cluster shard in a multi-shard fleet.
  EXPECT_THROW(ServiceFleet(cluster, {{&a, {}}, {&b, {2, 3}}}, routing),
               std::invalid_argument);
  // Leader outside the shard's node set.
  EXPECT_THROW(ServiceFleet(cluster, {{&a, {0, 1}, 3}}, routing), std::invalid_argument);
  // Null strategy / no shards.
  EXPECT_THROW(ServiceFleet(cluster, {{nullptr, {0, 1}}}, routing), std::invalid_argument);
  EXPECT_THROW(ServiceFleet(cluster, {}, routing), std::invalid_argument);
}

TEST(FleetConstruction, ShardViewScopesPlanningAndLeaders) {
  Cluster cluster(uniform_cluster(4));
  const ClusterView view = cluster.shard({2, 3});
  EXPECT_FALSE(view.whole_cluster());
  EXPECT_TRUE(view.contains(2));
  EXPECT_FALSE(view.contains(0));
  const auto available = view.visible_availability();
  EXPECT_FALSE(available[0]);
  EXPECT_TRUE(available[2]);
  EXPECT_TRUE(cluster.view().whole_cluster());

  // Default leader is the first member; scoped planning stays inside.
  ModelSet models;
  LeaderLocalStrategy a(0.01), b(0.01);
  RoundRobinRouting routing;
  ServiceFleet fleet(cluster, {{&a, {0, 1}}, {&b, {2, 3}}}, routing);
  EXPECT_EQ(fleet.shard(0).engine().leader(), 0u);
  EXPECT_EQ(fleet.shard(1).engine().leader(), 2u);
  fleet.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  fleet.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 0.0});
  const auto records = fleet.run();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& trace : fleet.shard(1).traces()) EXPECT_GE(trace.node, 2u);
}

TEST(FleetRouting, RoundRobinCyclesShards) {
  ModelSet models;
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.01), b(0.01);
  RoundRobinRouting routing;
  ServiceFleet fleet(cluster, {{&a, {0, 1}}, {&b, {2, 3}}}, routing);
  const auto stream = periodic_stream(models.graph(ModelId::kEfficientNetB0), 8, 0.5);
  for (const auto& spec : stream) fleet.submit(spec);
  fleet.run();
  EXPECT_EQ(fleet.shard(0).stats().submitted, 4u);
  EXPECT_EQ(fleet.shard(1).stats().submitted, 4u);
}

TEST(FleetRouting, LeastLoadedAvoidsBacklog) {
  ModelSet models;
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(1.0), b(1.0);
  LeastLoadedRouting routing;
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  shard_a.service.max_in_flight = 1;
  shard_b.service.max_in_flight = 1;
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing);
  // Four simultaneous arrivals: least-loaded must spread 2/2 instead of
  // piling onto shard 0.
  for (int i = 0; i < 4; ++i) {
    fleet.submit(RequestSpec{i, &models.graph(ModelId::kEfficientNetB0), 0.0});
  }
  fleet.run();
  EXPECT_EQ(fleet.shard(0).stats().submitted, 2u);
  EXPECT_EQ(fleet.shard(1).stats().submitted, 2u);
}

TEST(FleetRouting, ModelAffinityIsStablePerModel) {
  ModelSet models;
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.01), b(0.01);
  ModelAffinityRouting routing;
  ServiceFleet fleet(cluster, {{&a, {0, 1}}, {&b, {2, 3}}}, routing);
  int id = 0;
  for (int round = 0; round < 3; ++round) {
    fleet.submit(RequestSpec{id++, &models.graph(ModelId::kEfficientNetB0), 0.1 * round});
    fleet.submit(RequestSpec{id++, &models.graph(ModelId::kVgg19), 0.1 * round});
  }
  fleet.run();
  // Each model's stream lands wholesale on one shard (which shard is a
  // hash detail; stability is the contract).
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    std::set<std::string> seen;
    for (const auto& record : fleet.shard(s).run()) seen.insert(record.model);
    EXPECT_LE(seen.size(), 1u) << "shard " << s << " serves a mixed model set";
  }
  EXPECT_EQ(fleet.stats().completed, 6u);
}

TEST(FleetRouting, QosWeightedPrefersShardsWithoutHighClassBacklog) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(1.0), b(1.0);
  QosWeightedRouting routing;
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  shard_a.service.max_in_flight = 1;
  shard_b.service.max_in_flight = 1;
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing);
  // Both shards busy with one request. Then shard 0 gets an interactive
  // pending request, shard 1 a best-effort one: the next standard arrival
  // must prefer shard 1 (lower weighted backlog).
  fleet.submit(RequestSpec{0, &model, 0.0});
  fleet.submit(RequestSpec{1, &model, 0.0});
  RequestSpec interactive{2, &model, 0.1, QosClass::kInteractive};
  fleet.submit(interactive);  // least weighted load: shard 0 (submit order tie)
  RequestSpec best_effort{3, &model, 0.15, QosClass::kBestEffort};
  fleet.submit(best_effort);
  fleet.submit(RequestSpec{4, &model, 0.2});
  fleet.run();
  // Shard 1 ends with the best-effort + the final standard request.
  EXPECT_EQ(fleet.shard(1).stats().submitted, 3u);
  EXPECT_EQ(fleet.shard(0).stats().submitted, 2u);
  EXPECT_EQ(fleet.shard(0).stats().of(QosClass::kInteractive).completed, 1u);
}

TEST(FleetWorkStealing, SkewedArrivalsStealToIdleShardAndLowerP99) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  const auto stream = periodic_stream(model, 40, 0.05);

  const auto run_fleet = [&](bool stealing) {
    Cluster cluster(uniform_cluster(4));
    LeaderLocalStrategy a(0.2), b(0.2);
    AllToZeroRouting routing;
    FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
    FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
    shard_a.service.max_in_flight = 1;
    shard_b.service.max_in_flight = 1;
    FleetOptions options;
    options.work_stealing = stealing;
    ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
    ReplayArrivals arrivals(stream);
    fleet.attach(&arrivals);
    const auto records = fleet.run();
    StreamMetrics metrics = summarize_run(records, cluster);
    EXPECT_EQ(records.size(), stream.size());
    EXPECT_EQ(fleet.stats().completed, stream.size());
    return std::pair<StreamMetrics, std::size_t>(metrics, fleet.steals());
  };

  const auto [skewed, no_steals] = run_fleet(false);
  const auto [balanced, steals] = run_fleet(true);
  EXPECT_EQ(no_steals, 0u);
  EXPECT_GT(steals, 0u);
  // All load funnels into shard 0; stealing turns one server into two, so
  // the tail latency must drop well below the skewed run's.
  EXPECT_LT(balanced.p99_latency_s, 0.7 * skewed.p99_latency_s);
  EXPECT_LT(balanced.makespan_s, skewed.makespan_s);
}

TEST(FleetWorkStealing, StealsHighestQosPendingFirst) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(2));
  LeaderLocalStrategy strategy(1.0);
  ServiceOptions options;
  options.max_in_flight = 1;
  InferenceService service(cluster.shard({0}), strategy, 0, options);
  service.submit(RequestSpec{0, &model, 0.0});  // occupies the slot
  service.submit(RequestSpec{1, &model, 0.1, QosClass::kBestEffort});
  service.submit(RequestSpec{2, &model, 0.2, QosClass::kInteractive});
  service.submit(RequestSpec{3, &model, 0.3, QosClass::kStandard});
  cluster.simulator().run_until(0.5);
  ASSERT_EQ(service.pending(), 3u);
  EXPECT_EQ(service.pending_of(QosClass::kInteractive), 1u);
  const auto stolen = service.steal_pending();
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->id, 2);  // interactive outranks earlier arrivals
  EXPECT_EQ(stolen->qos, QosClass::kInteractive);
  EXPECT_EQ(service.stats().stolen_away, 1u);
  EXPECT_EQ(service.stats().of(QosClass::kInteractive).stolen_away, 1u);
  cluster.simulator().run();
  // The stolen request is no longer this shard's to report.
  const auto records = service.run();
  ASSERT_EQ(records.size(), 3u);
  for (const auto& record : records) EXPECT_NE(record.id, 2);
}

TEST(FleetWorkStealing, StolenExpiredRequestIsDroppedNotExecuted) {
  // A request stolen after its deadline passed on the victim's queue must
  // not burn the thief's dispatch slot: under drop_expired_pending the
  // thief drops it on adoption-arrival, exactly as the victim's own
  // dispatch path would have.
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(2));
  LeaderLocalStrategy victim_strategy(1.0), thief_strategy(1.0);
  ServiceOptions options;
  options.max_in_flight = 1;
  options.drop_expired_pending = true;
  InferenceService victim(cluster.shard({0}), victim_strategy, 0, options);
  InferenceService thief(cluster.shard({1}), thief_strategy, 1, options);
  victim.submit(RequestSpec{0, &model, 0.0});  // busy until t=1
  RequestSpec hopeless{1, &model, 0.1};
  hopeless.deadline_s = 0.3;  // expires while queued behind request 0
  victim.submit(hopeless);
  // Advance the clock to t=0.5 (past the deadline) before stealing — in a
  // fleet, rebalance always runs inside an event, so now() is current.
  cluster.simulator().schedule_at(0.5, [] {});
  cluster.simulator().run_until(0.5);
  const auto stolen = victim.steal_pending();
  ASSERT_TRUE(stolen.has_value());
  thief.adopt(*stolen);
  cluster.simulator().run();
  const auto thief_records = thief.run();
  ASSERT_EQ(thief_records.size(), 1u);
  EXPECT_EQ(thief_records[0].outcome, RequestOutcome::kDropped);
  EXPECT_DOUBLE_EQ(thief_records[0].flops, 0.0);  // never executed
  EXPECT_EQ(thief.stats().stolen_in, 1u);
  EXPECT_EQ(thief.stats().dropped, 1u);
  EXPECT_EQ(victim.stats().stolen_away, 1u);
  // Per-class slices balance on both sides of the migration:
  // submitted - stolen_away + stolen_in = terminal outcomes.
  const QosClassStats& victim_std = victim.stats().of(QosClass::kStandard);
  EXPECT_EQ(victim_std.submitted, 2u);
  EXPECT_EQ(victim_std.stolen_away, 1u);
  EXPECT_EQ(victim_std.completed + victim_std.deadline_misses, 1u);
  const QosClassStats& thief_std = thief.stats().of(QosClass::kStandard);
  EXPECT_EQ(thief_std.submitted, 0u);
  EXPECT_EQ(thief_std.stolen_in, 1u);
  EXPECT_EQ(thief_std.dropped, 1u);
}

TEST(FleetArrivals, PoissonThroughFleetIsDeterministic) {
  ModelSet models;
  const auto run_once = [&]() {
    Cluster cluster(uniform_cluster(4));
    LeaderLocalStrategy a(0.05), b(0.05);
    LeastLoadedRouting routing;
    FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
    FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
    shard_a.service.max_in_flight = 1;
    shard_b.service.max_in_flight = 1;
    FleetOptions options;
    options.work_stealing = true;
    ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
    PoissonArrivals::Options poisson;
    poisson.rate_hz = 40.0;
    poisson.count = 60;
    poisson.seed = 7;
    PoissonArrivals arrivals(models, {ModelId::kEfficientNetB0, ModelId::kVgg19}, poisson);
    fleet.attach(&arrivals);
    return fleet.run();
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 60u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].model, second[i].model);
    EXPECT_EQ(first[i].outcome, second[i].outcome);
    EXPECT_EQ(first[i].arrival_s, second[i].arrival_s);
    EXPECT_EQ(first[i].finish_s, second[i].finish_s);
  }
}

TEST(FleetArrivals, ClosedLoopClientsAcrossShardsNeverDeadlock) {
  // Completions reach the pool from different shards (including rejections
  // under tight admission); every client must keep making progress.
  ModelSet models;
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.5), b(0.5);
  LeastLoadedRouting routing;
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  shard_a.service.max_in_flight = 1;
  shard_a.service.max_pending = 1;
  shard_b.service.max_in_flight = 1;
  shard_b.service.max_pending = 1;
  FleetOptions options;
  options.work_stealing = true;
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
  ClosedLoopClients::Options pool;
  pool.clients = 5;
  pool.requests_per_client = 4;
  ClosedLoopClients clients(models, {ModelId::kEfficientNetB0}, pool);
  fleet.attach(&clients);
  const auto records = fleet.run();
  EXPECT_EQ(records.size(), 20u);
  EXPECT_EQ(clients.issued(), 20);
  const ServiceStats stats = fleet.stats();
  EXPECT_EQ(stats.completed + stats.rejected + stats.dropped + stats.deadline_misses, 20u);
  EXPECT_GT(stats.completed, 0u);
  std::set<int> ids;
  for (const auto& record : records) ids.insert(record.id);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(fleet.shard(0).pending() + fleet.shard(1).pending(), 0u);
}

TEST(FleetFailover, DeadShardEvacuatesPendingAndInFlightToSibling) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.2), b(0.2);
  AllToZeroRouting routing;  // everything lands on shard 0
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  shard_a.service.max_in_flight = 1;
  shard_b.service.max_in_flight = 1;
  FleetOptions options;
  options.failover.enabled = true;
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
  // 6 requests pile onto shard 0; its nodes die at t=0.3 with one request
  // mid-task and the rest pending.
  const auto stream = periodic_stream(model, 6, 0.05);
  for (const auto& spec : stream) fleet.submit(spec);
  ScriptedChurn trace({
      {0.3, 0, ChurnEvent::Action::kFail, 1.0},
      {0.3, 1, ChurnEvent::Action::kFail, 1.0},
  });
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = fleet.run();
  ASSERT_EQ(records.size(), 6u);
  for (const auto& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted) << "request " << record.id;
  }
  EXPECT_GT(fleet.evacuations(), 0u);
  // Post-churn work ran on shard 1's nodes only.
  for (const auto& trace_entry : fleet.shard(1).traces()) {
    EXPECT_GE(trace_entry.node, 2u);
  }
  // Migration accounting balances on both sides.
  const ServiceStats& victim = fleet.shard(0).stats();
  const ServiceStats& thief = fleet.shard(1).stats();
  EXPECT_EQ(victim.submitted - victim.stolen_away,
            victim.completed + victim.rejected + victim.dropped + victim.deadline_misses +
                victim.failed);
  EXPECT_EQ(thief.stolen_in, victim.stolen_away);
  EXPECT_EQ(thief.stolen_in + thief.submitted,
            thief.completed + thief.rejected + thief.dropped + thief.deadline_misses +
                thief.failed);
}

TEST(FleetFailover, DisabledFleetStrandsDeadShardRequestsAsFailed) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.2), b(0.2);
  AllToZeroRouting routing;
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  shard_a.service.max_in_flight = 1;
  shard_b.service.max_in_flight = 1;
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing);  // failover off
  const auto stream = periodic_stream(model, 6, 0.05);
  for (const auto& spec : stream) fleet.submit(spec);
  ScriptedChurn trace({
      {0.3, 0, ChurnEvent::Action::kFail, 1.0},
      {0.3, 1, ChurnEvent::Action::kFail, 1.0},
  });
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = fleet.run();
  ASSERT_EQ(records.size(), 6u);
  const ServiceStats stats = fleet.stats();
  EXPECT_EQ(fleet.evacuations(), 0u);
  EXPECT_GT(stats.failed, 0u);
  EXPECT_LT(stats.completed, 6u);
  EXPECT_EQ(stats.completed + stats.failed, 6u);
}

TEST(FleetFailover, BelowFloorShardParksAndEvacuatesEvenWithLiveLeader) {
  // min_live_nodes = 2 on a 2-node shard: losing the non-leader worker
  // makes the shard dead by the fleet's floor even though its leader is
  // up. The shard must park (its liveness hook mirrors the fleet's death
  // predicate) and let the fleet evacuate — not race it for the queue.
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.2), b(0.2);
  AllToZeroRouting routing;
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  shard_a.service.max_in_flight = 1;
  shard_b.service.max_in_flight = 1;
  FleetOptions options;
  options.failover.enabled = true;
  options.failover.min_live_nodes = 2;
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
  const auto stream = periodic_stream(model, 5, 0.05);
  for (const auto& spec : stream) fleet.submit(spec);
  // Kill the non-leader worker of shard 0 at t=0.1: leader 0 stays up.
  ScriptedChurn trace({{0.1, 1, ChurnEvent::Action::kFail, 1.0}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto records = fleet.run();
  ASSERT_EQ(records.size(), 5u);
  for (const auto& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted) << "request " << record.id;
  }
  EXPECT_GT(fleet.evacuations(), 0u);
  // Nothing dispatched on shard 0 after the floor violation.
  for (const auto& trace_entry : fleet.shard(0).traces()) {
    EXPECT_LT(trace_entry.end_s, 0.1 + 0.2 + 1e-9);
  }
}

TEST(FleetFailover, RoutesAroundDeadShardAtArrival) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.05), b(0.05);
  LeastLoadedRouting routing;
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  FleetOptions options;
  options.failover.enabled = true;
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
  // Shard 0 dead from the start; all arrivals must route to shard 1.
  ScriptedChurn trace({{0.0, 0, ChurnEvent::Action::kFail, 1.0}});
  ChurnInjector injector(cluster, trace);
  injector.start();
  const auto stream = periodic_stream(model, 4, 0.1, /*start_s=*/0.05);
  for (const auto& spec : stream) fleet.submit(spec);
  const auto records = fleet.run();
  ASSERT_EQ(records.size(), 4u);
  for (const auto& record : records) EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(fleet.shard(0).stats().submitted, 0u);
  EXPECT_EQ(fleet.shard(1).stats().submitted, 4u);
}

TEST(FleetFailover, MergeOrphansReassignsSurvivorsOfDeadShard) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.05), b(0.05);
  RoundRobinRouting routing;
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  FleetOptions options;
  options.failover.enabled = true;
  options.failover.merge_orphans = true;
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
  EXPECT_EQ(fleet.shard_of(1), 0u);
  const std::uint64_t epoch_before = fleet.membership_epoch();
  // Shard 0's leader (node 0) dies; its surviving worker node 1 merges
  // into shard 1.
  cluster.set_node_available(0, false);
  EXPECT_EQ(fleet.shard_of(1), 1u);
  EXPECT_GT(fleet.membership_epoch(), epoch_before);
  EXPECT_TRUE(fleet.shard(1).engine().scope().contains(1));
  EXPECT_FALSE(fleet.shard(0).engine().scope().contains(1));
  // The merged shard serves requests over its enlarged membership.
  fleet.submit(RequestSpec{0, &model, 0.1});
  fleet.submit(RequestSpec{1, &model, 0.1});
  const auto records = fleet.run();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
}

TEST(FleetFailover, ReassignValidatesAndMovesMembership) {
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.05), b(0.05);
  RoundRobinRouting routing;
  ServiceFleet fleet(cluster, {{&a, {0, 1}}, {&b, {2, 3}}}, routing);
  EXPECT_THROW(fleet.reassign(0, 1), std::invalid_argument);  // shard 0's leader
  EXPECT_THROW(fleet.reassign(1, 5), std::invalid_argument);  // shard out of range
  EXPECT_THROW(fleet.reassign(9, 1), std::invalid_argument);  // node out of range
  fleet.reassign(1, 1);
  EXPECT_EQ(fleet.shard_of(1), 1u);
  EXPECT_EQ(fleet.membership_epoch(), 1u);
  fleet.reassign(1, 1);  // already there: no-op
  EXPECT_EQ(fleet.membership_epoch(), 1u);
  fleet.reassign(1, 0);  // and back
  EXPECT_EQ(fleet.shard_of(1), 0u);
  EXPECT_EQ(fleet.membership_epoch(), 2u);
}

TEST(FleetFailover, ZeroChurnRunBitIdenticalWithFailoverEnabled) {
  // The failover machinery (observers, hooks, route-around checks) must be
  // inert without churn: records, traces and stats match a fleet that
  // never heard of failover, field for field.
  ModelSet models;
  const auto stream = [&] {
    util::Rng rng(17);
    return mixed_stream(models, {ModelId::kEfficientNetB0}, 30, 0.02, rng);
  }();
  const auto run_fleet = [&](bool failover) {
    Cluster cluster(uniform_cluster(4));
    LeaderLocalStrategy a(0.1), b(0.1);
    LeastLoadedRouting routing;
    FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
    FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
    shard_a.service.max_in_flight = 1;
    shard_a.service.max_pending = 4;
    shard_b.service.max_in_flight = 1;
    shard_b.service.max_pending = 4;
    FleetOptions options;
    options.work_stealing = true;
    options.failover.enabled = failover;
    options.failover.merge_orphans = failover;
    ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
    ReplayArrivals arrivals(stream);
    fleet.attach(&arrivals);
    auto records = fleet.run();
    std::vector<TaskTrace> traces;
    for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
      const auto& shard_traces = fleet.shard(s).traces();
      traces.insert(traces.end(), shard_traces.begin(), shard_traces.end());
    }
    return std::make_tuple(std::move(records), std::move(traces), fleet.stats());
  };
  const auto [plain_records, plain_traces, plain_stats] = run_fleet(false);
  const auto [failover_records, failover_traces, failover_stats] = run_fleet(true);
  ASSERT_EQ(plain_records.size(), failover_records.size());
  for (std::size_t i = 0; i < plain_records.size(); ++i) {
    const RequestRecord& p = plain_records[i];
    const RequestRecord& f = failover_records[i];
    EXPECT_EQ(p.id, f.id);
    EXPECT_EQ(p.outcome, f.outcome);
    EXPECT_DOUBLE_EQ(p.arrival_s, f.arrival_s);
    EXPECT_DOUBLE_EQ(p.dispatch_s, f.dispatch_s);
    EXPECT_DOUBLE_EQ(p.finish_s, f.finish_s);
    EXPECT_DOUBLE_EQ(p.flops, f.flops);
  }
  ASSERT_EQ(plain_traces.size(), failover_traces.size());
  for (std::size_t i = 0; i < plain_traces.size(); ++i) {
    EXPECT_EQ(plain_traces[i].request, failover_traces[i].request);
    EXPECT_EQ(plain_traces[i].node, failover_traces[i].node);
    EXPECT_DOUBLE_EQ(plain_traces[i].start_s, failover_traces[i].start_s);
    EXPECT_DOUBLE_EQ(plain_traces[i].end_s, failover_traces[i].end_s);
  }
  EXPECT_EQ(plain_stats.completed, failover_stats.completed);
  EXPECT_EQ(plain_stats.rejected, failover_stats.rejected);
  EXPECT_EQ(plain_stats.dropped, failover_stats.dropped);
  EXPECT_EQ(plain_stats.failed, failover_stats.failed);
  EXPECT_EQ(plain_stats.stolen_in, failover_stats.stolen_in);
  EXPECT_EQ(plain_stats.peak_pending, failover_stats.peak_pending);
}

TEST(FleetWorkStealing, CostAwareStealingForUnlimitedAdmissionShards) {
  // Shard 0: bounded admission, saturated by the skewed stream. Shard 1:
  // unlimited admission. Seed behaviour (steal_backlog_s = 0) never
  // steals into shard 1; the cost-aware knob lets it absorb backlog up to
  // its backlog-cost budget.
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  const auto stream = periodic_stream(model, 40, 0.05);
  const auto run_fleet = [&](double steal_backlog_s) {
    Cluster cluster(uniform_cluster(4));
    LeaderLocalStrategy a(0.2), b(0.2);
    AllToZeroRouting routing;
    FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
    FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
    shard_a.service.max_in_flight = 1;
    shard_b.service.max_in_flight = 0;  // unlimited admission
    shard_b.service.steal_backlog_s = steal_backlog_s;
    FleetOptions options;
    options.work_stealing = true;
    ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
    ReplayArrivals arrivals(stream);
    fleet.attach(&arrivals);
    const auto records = fleet.run();
    StreamMetrics metrics = summarize_run(records, cluster);
    return std::make_pair(metrics, fleet.steals());
  };
  const auto [seed_metrics, seed_steals] = run_fleet(0.0);
  const auto [cost_metrics, cost_steals] = run_fleet(0.6);
  // Regression: the default stays the seed behaviour — no stealing into
  // unlimited-admission shards.
  EXPECT_EQ(seed_steals, 0u);
  EXPECT_GT(cost_steals, 0u);
  EXPECT_LT(cost_metrics.p99_latency_s, seed_metrics.p99_latency_s);
  EXPECT_LE(cost_metrics.makespan_s, seed_metrics.makespan_s);
}

TEST(FleetScaling, ThroughputGrowsWithShardCount) {
  // The PR 3 overload shape (service demand far above arrival spacing) on
  // the same 8 nodes, carved into 1, 2 and 4 shards: aggregate completed
  // throughput must grow monotonically with shard count.
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  const auto stream = periodic_stream(model, 120, 0.01);

  const auto completed_per_second = [&](std::size_t shard_count) {
    Cluster cluster(uniform_cluster(8));
    std::vector<LeaderLocalStrategy> strategies(shard_count, LeaderLocalStrategy(0.2));
    std::vector<FleetShard> shards;
    const std::size_t span = 8 / shard_count;
    for (std::size_t s = 0; s < shard_count; ++s) {
      FleetShard shard;
      shard.strategy = &strategies[s];
      for (std::size_t n = 0; n < span; ++n) shard.nodes.push_back(s * span + n);
      shard.service.max_in_flight = 1;
      shard.service.max_pending = 4;
      shards.push_back(shard);
    }
    LeastLoadedRouting routing;
    FleetOptions options;
    options.work_stealing = true;
    ServiceFleet fleet(cluster, shards, routing, options);
    ReplayArrivals arrivals(stream);
    fleet.attach(&arrivals);
    const auto records = fleet.run();
    const StreamMetrics metrics = summarize_run(records, cluster);
    return static_cast<double>(fleet.stats().completed) / metrics.makespan_s;
  };

  const double one = completed_per_second(1);
  const double two = completed_per_second(2);
  const double four = completed_per_second(4);
  EXPECT_GT(two, 1.5 * one);
  EXPECT_GT(four, 1.5 * two);
}

}  // namespace
}  // namespace hidp::runtime
