// Metrics: run summaries, per-model views, GFLOPS timeline.
#include <gtest/gtest.h>

#include "platform/device_db.hpp"
#include "runtime/metrics.hpp"

namespace hidp::runtime {
namespace {

RequestRecord record(int id, const std::string& model, double arrival, double finish,
                     double flops) {
  RequestRecord r;
  r.id = id;
  r.model = model;
  r.arrival_s = arrival;
  r.finish_s = finish;
  r.flops = flops;
  return r;
}

TEST(Metrics, SummaryAggregates) {
  Cluster cluster(platform::paper_cluster(2));
  const std::vector<RequestRecord> records{
      record(0, "A", 0.0, 1.0, 1e9),
      record(1, "A", 0.0, 2.0, 1e9),
      record(2, "B", 1.0, 4.0, 2e9),
  };
  const StreamMetrics m = summarize_run(records, cluster);
  EXPECT_EQ(m.requests, 3);
  EXPECT_DOUBLE_EQ(m.mean_latency_s, (1.0 + 2.0 + 3.0) / 3.0);
  EXPECT_DOUBLE_EQ(m.max_latency_s, 3.0);
  EXPECT_DOUBLE_EQ(m.makespan_s, 4.0);
  EXPECT_DOUBLE_EQ(m.total_flops, 4e9);
  EXPECT_DOUBLE_EQ(m.throughput_per_100s, 75.0);
  EXPECT_DOUBLE_EQ(m.avg_gflops, 1.0);
  EXPECT_GT(m.energy_j, 0.0);
  EXPECT_DOUBLE_EQ(m.energy_per_inference_j, m.energy_j / 3.0);
}

TEST(Metrics, PercentilesFromLatencyDistribution) {
  Cluster cluster(platform::paper_cluster(2));
  std::vector<RequestRecord> records;
  // Latencies 1..100 s: the percentile helper interpolates over the sorted
  // sample, so p50 = 50.5, p95 = 95.05, p99 = 99.01.
  for (int i = 1; i <= 100; ++i) {
    records.push_back(record(i, "A", 0.0, static_cast<double>(i), 1e9));
  }
  const StreamMetrics m = summarize_run(records, cluster);
  EXPECT_NEAR(m.p50_latency_s, 50.5, 1e-9);
  EXPECT_NEAR(m.p95_latency_s, 95.05, 1e-9);
  EXPECT_NEAR(m.p99_latency_s, 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(m.max_latency_s, 100.0);
  EXPECT_LE(m.p50_latency_s, m.p95_latency_s);
  EXPECT_LE(m.p95_latency_s, m.p99_latency_s);
  EXPECT_LE(m.p99_latency_s, m.max_latency_s);
}

TEST(Metrics, LifecycleOutcomesCounted) {
  Cluster cluster(platform::paper_cluster(2));
  std::vector<RequestRecord> records{
      record(0, "A", 0.0, 1.0, 1e9),
      record(1, "A", 0.0, 2.0, 1e9),
      record(2, "A", 0.5, 3.0, 1e9),
      record(3, "A", 0.5, 0.5, 0.0),
      record(4, "A", 0.7, 0.7, 0.0),
  };
  records[1].outcome = RequestOutcome::kDeadlineMiss;
  records[3].outcome = RequestOutcome::kRejected;
  records[4].outcome = RequestOutcome::kDropped;
  const StreamMetrics m = summarize_run(records, cluster);
  EXPECT_EQ(m.requests, 5);
  EXPECT_EQ(m.completed, 2);
  EXPECT_EQ(m.deadline_misses, 1);
  EXPECT_EQ(m.rejected, 1);
  EXPECT_EQ(m.dropped, 1);
  // Latency statistics cover only the three executed requests; the shed
  // ones would otherwise drag the mean toward zero.
  EXPECT_DOUBLE_EQ(m.mean_latency_s, (1.0 + 2.0 + 2.5) / 3.0);
  // Throughput counts executed inferences (completed + missed).
  EXPECT_DOUBLE_EQ(m.throughput_per_100s, 100.0 * 3.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.energy_per_inference_j, m.energy_j / 3.0);
}

TEST(Metrics, PerQosClassBreakdown) {
  Cluster cluster(platform::paper_cluster(2));
  std::vector<RequestRecord> records;
  // Interactive: latencies 1..10 s. Best-effort: one completion, one
  // rejection, one drop, one deadline miss.
  for (int i = 1; i <= 10; ++i) {
    records.push_back(record(i, "A", 0.0, static_cast<double>(i), 1e9));
    records.back().qos = QosClass::kInteractive;
  }
  records.push_back(record(20, "A", 0.0, 2.0, 1e9));
  records.back().qos = QosClass::kBestEffort;
  records.push_back(record(21, "A", 0.5, 0.5, 0.0));
  records.back().qos = QosClass::kBestEffort;
  records.back().outcome = RequestOutcome::kRejected;
  records.push_back(record(22, "A", 0.6, 0.6, 0.0));
  records.back().qos = QosClass::kBestEffort;
  records.back().outcome = RequestOutcome::kDropped;
  records.push_back(record(23, "A", 0.0, 4.0, 1e9));
  records.back().qos = QosClass::kBestEffort;
  records.back().outcome = RequestOutcome::kDeadlineMiss;
  const StreamMetrics m = summarize_run(records, cluster);

  const QosClassMetrics& interactive = m.of(QosClass::kInteractive);
  EXPECT_EQ(interactive.requests, 10);
  EXPECT_EQ(interactive.completed, 10);
  EXPECT_EQ(interactive.rejected, 0);
  EXPECT_NEAR(interactive.p50_latency_s, 5.5, 1e-9);
  EXPECT_NEAR(interactive.p99_latency_s, 9.91, 1e-9);

  const QosClassMetrics& best_effort = m.of(QosClass::kBestEffort);
  EXPECT_EQ(best_effort.requests, 4);
  EXPECT_EQ(best_effort.completed, 1);
  EXPECT_EQ(best_effort.rejected, 1);
  EXPECT_EQ(best_effort.dropped, 1);
  EXPECT_EQ(best_effort.deadline_misses, 1);
  // Percentiles cover the executed requests of the class only (latencies
  // 2 s and 4 s).
  EXPECT_NEAR(best_effort.p50_latency_s, 3.0, 1e-9);
  EXPECT_GT(best_effort.p99_latency_s, 3.9);

  const QosClassMetrics& standard = m.of(QosClass::kStandard);
  EXPECT_EQ(standard.requests, 0);
  EXPECT_DOUBLE_EQ(standard.p50_latency_s, 0.0);

  // Class slices partition the aggregate counters.
  EXPECT_EQ(interactive.completed + best_effort.completed + standard.completed, m.completed);
  EXPECT_EQ(interactive.requests + best_effort.requests + standard.requests, m.requests);
}

TEST(Metrics, AllShedRunHasNoLatencyStats) {
  Cluster cluster(platform::paper_cluster(2));
  std::vector<RequestRecord> records{record(0, "A", 0.0, 0.0, 0.0)};
  records[0].outcome = RequestOutcome::kRejected;
  const StreamMetrics m = summarize_run(records, cluster);
  EXPECT_EQ(m.requests, 1);
  EXPECT_EQ(m.rejected, 1);
  EXPECT_DOUBLE_EQ(m.mean_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(m.p99_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(m.energy_per_inference_j, 0.0);
  EXPECT_DOUBLE_EQ(m.throughput_per_100s, 0.0);
}

TEST(Metrics, EmptyRunIsZero) {
  Cluster cluster(platform::paper_cluster(2));
  const StreamMetrics m = summarize_run({}, cluster);
  EXPECT_EQ(m.requests, 0);
  EXPECT_DOUBLE_EQ(m.energy_j, 0.0);
}

TEST(Metrics, PerModelLatency) {
  const std::vector<RequestRecord> records{
      record(0, "A", 0.0, 1.0, 1e9),
      record(1, "B", 0.0, 3.0, 1e9),
      record(2, "A", 2.0, 4.0, 1e9),
  };
  EXPECT_DOUBLE_EQ(mean_latency_for_model(records, "A"), 1.5);
  EXPECT_DOUBLE_EQ(mean_latency_for_model(records, "B"), 3.0);
  EXPECT_DOUBLE_EQ(mean_latency_for_model(records, "missing"), 0.0);
}

TEST(Metrics, EnergyApportionedByFlops) {
  Cluster cluster(platform::paper_cluster(2));
  const std::vector<RequestRecord> records{
      record(0, "A", 0.0, 1.0, 3e9),
      record(1, "B", 0.0, 1.0, 1e9),
  };
  const double ea = energy_for_model(records, cluster, "A");
  const double eb = energy_for_model(records, cluster, "B");
  EXPECT_NEAR(ea / eb, 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(energy_for_model(records, cluster, "missing"), 0.0);
}

TEST(Timeline, SpreadsFlopsUniformly) {
  std::vector<TaskTrace> traces;
  TaskTrace t;
  t.kind = PlanTask::Kind::kCompute;
  t.start_s = 0.0;
  t.end_s = 2.0;
  t.flops = 4e9;
  traces.push_back(t);
  const auto points = gflops_timeline(traces, 1.0, 2.0);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].gflops, 2.0);
  EXPECT_DOUBLE_EQ(points[1].gflops, 2.0);
  EXPECT_DOUBLE_EQ(points[0].time_s, 0.5);
}

TEST(Timeline, PartialBucketOverlap) {
  std::vector<TaskTrace> traces;
  TaskTrace t;
  t.kind = PlanTask::Kind::kCompute;
  t.start_s = 0.5;
  t.end_s = 1.5;
  t.flops = 1e9;
  traces.push_back(t);
  const auto points = gflops_timeline(traces, 1.0, 2.0);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].gflops, 0.5);
  EXPECT_DOUBLE_EQ(points[1].gflops, 0.5);
}

TEST(Timeline, IgnoresTransfers) {
  std::vector<TaskTrace> traces;
  TaskTrace t;
  t.kind = PlanTask::Kind::kTransfer;
  t.start_s = 0.0;
  t.end_s = 1.0;
  t.bytes = 1 << 20;
  traces.push_back(t);
  const auto points = gflops_timeline(traces, 0.5, 1.0);
  for (const auto& p : points) EXPECT_DOUBLE_EQ(p.gflops, 0.0);
}

TEST(Timeline, ZeroDurationTaskLandsInBucket) {
  std::vector<TaskTrace> traces;
  TaskTrace t;
  t.kind = PlanTask::Kind::kCompute;
  t.start_s = 0.7;
  t.end_s = 0.7;
  t.flops = 1e9;
  traces.push_back(t);
  const auto points = gflops_timeline(traces, 0.5, 1.0);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[1].gflops, 2.0);  // 1e9 flops over a 0.5 s bucket
}

TEST(Timeline, DegenerateInputs) {
  EXPECT_TRUE(gflops_timeline({}, 0.0, 1.0).empty());
  EXPECT_TRUE(gflops_timeline({}, 1.0, 0.0).empty());
}

TEST(ServiceEnergy, ChargesIdleFloorOverServiceWindow) {
  Cluster cluster(platform::paper_cluster(2));
  double idle_floor = 0.0;
  for (const auto& node : cluster.nodes()) {
    idle_floor += platform::node_idle_power_w(node);
  }
  RequestRecord r = record(0, "A", 0.0, 2.0, 1e9);
  r.dispatch_s = 0.5;  // 1.5 s of service
  const double e = mean_service_energy_j({r}, {}, cluster);
  EXPECT_NEAR(e, idle_floor * 1.5, 1e-9);
}

TEST(ServiceEnergy, AddsDynamicTaskEnergy) {
  Cluster cluster(platform::paper_cluster(2));
  RequestRecord r = record(0, "A", 0.0, 1.0, 1e9);
  r.dispatch_s = 0.0;
  TaskTrace t;
  t.request = 0;
  t.kind = PlanTask::Kind::kCompute;
  t.node = 0;
  t.proc = 0;
  t.start_s = 0.0;
  t.end_s = 1.0;
  const auto& proc = cluster.nodes()[0].processor(0);
  const double base = mean_service_energy_j({r}, {}, cluster);
  const double with_task = mean_service_energy_j({r}, {t}, cluster);
  EXPECT_NEAR(with_task - base, proc.peak_w() - proc.idle_w(), 1e-9);
}

TEST(ServiceEnergy, EmptyRecordsZero) {
  Cluster cluster(platform::paper_cluster(2));
  EXPECT_DOUBLE_EQ(mean_service_energy_j({}, {}, cluster), 0.0);
}

TEST(ServiceEnergy, LongerServiceCostsMore) {
  Cluster cluster(platform::paper_cluster(2));
  RequestRecord fast = record(0, "A", 0.0, 0.5, 1e9);
  RequestRecord slow = record(0, "A", 0.0, 2.0, 1e9);
  EXPECT_GT(mean_service_energy_j({slow}, {}, cluster),
            mean_service_energy_j({fast}, {}, cluster));
}

}  // namespace
}  // namespace hidp::runtime
