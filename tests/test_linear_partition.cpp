// DP and greedy-backprop partition search: optimality vs brute force,
// engine cross-checks, and edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "partition/linear_partition.hpp"
#include "util/rng.hpp"

namespace hidp::partition {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Brute-force over all contiguous partitions with ordered workers.
double brute_force(int segments, int workers, const StageCostFn& stage,
                   const BoundaryCostFn& boundary, PartitionObjective objective) {
  double best = kInf;
  std::vector<LinearPartitionResult::Block> blocks;
  std::function<void(int, int)> recurse = [&](int seg, int last_worker) {
    if (seg == segments) {
      best = std::min(best, evaluate_partition(blocks, stage, boundary, objective));
      return;
    }
    for (int w = last_worker + 1; w < workers; ++w) {
      for (int end = seg + 1; end <= segments; ++end) {
        blocks.push_back({seg, end, w});
        recurse(end, w);
        blocks.pop_back();
      }
    }
  };
  recurse(0, -1);
  return best;
}

struct RandomCase {
  int segments;
  int workers;
  std::uint64_t seed;
};

class DpOptimality : public ::testing::TestWithParam<RandomCase> {};

TEST_P(DpOptimality, MatchesBruteForceBothObjectives) {
  const RandomCase c = GetParam();
  util::Rng rng(c.seed);
  std::vector<double> seg_cost(static_cast<std::size_t>(c.segments));
  for (auto& v : seg_cost) v = rng.uniform(0.1, 2.0);
  std::vector<double> rate(static_cast<std::size_t>(c.workers));
  for (auto& v : rate) v = rng.uniform(0.5, 4.0);
  std::vector<double> handoff(static_cast<std::size_t>(c.segments) + 1);
  for (auto& v : handoff) v = rng.uniform(0.01, 0.5);

  const StageCostFn stage = [&](int b, int e, int w) {
    double total = 0.0;
    for (int s = b; s < e; ++s) total += seg_cost[static_cast<std::size_t>(s)];
    return total / rate[static_cast<std::size_t>(w)];
  };
  const BoundaryCostFn boundary = [&](int cut, int, int) {
    return handoff[static_cast<std::size_t>(cut)];
  };

  for (const auto objective :
       {PartitionObjective::kMinimizeSum, PartitionObjective::kMinimizeBottleneck}) {
    const auto dp = dp_linear_partition(c.segments, c.workers, stage, boundary, objective);
    const double exact = brute_force(c.segments, c.workers, stage, boundary, objective);
    ASSERT_TRUE(dp.valid());
    EXPECT_NEAR(dp.objective, exact, 1e-9) << "objective mismatch";
    EXPECT_NEAR(evaluate_partition(dp.blocks, stage, boundary, objective), dp.objective, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, DpOptimality,
                         ::testing::Values(RandomCase{4, 2, 1}, RandomCase{5, 3, 2},
                                           RandomCase{6, 3, 3}, RandomCase{7, 2, 4},
                                           RandomCase{6, 4, 5}, RandomCase{8, 3, 6},
                                           RandomCase{3, 5, 7}, RandomCase{9, 2, 8}));

TEST(Dp, BlocksCoverAllSegmentsInOrder) {
  const StageCostFn stage = [](int b, int e, int w) { return (e - b) * (w + 1.0); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.1; };
  const auto result =
      dp_linear_partition(10, 3, stage, boundary, PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(result.valid());
  int cursor = 0;
  int last_worker = -1;
  for (const auto& block : result.blocks) {
    EXPECT_EQ(block.begin, cursor);
    EXPECT_GT(block.worker, last_worker);
    cursor = block.end;
    last_worker = block.worker;
  }
  EXPECT_EQ(cursor, 10);
}

TEST(Dp, SingleWorkerTakesEverything) {
  const StageCostFn stage = [](int b, int e, int) { return static_cast<double>(e - b); };
  const BoundaryCostFn boundary = [](int, int, int) { return 1e9; };
  const auto result = dp_linear_partition(5, 1, stage, boundary,
                                          PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(result.valid());
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_DOUBLE_EQ(result.objective, 5.0);
}

TEST(Dp, ExpensiveHandoffKeepsWorkTogether) {
  const StageCostFn stage = [](int b, int e, int w) {
    return (e - b) * (w == 0 ? 1.0 : 0.1);
  };
  const BoundaryCostFn boundary = [](int, int, int) { return 100.0; };
  const auto result = dp_linear_partition(4, 2, stage, boundary,
                                          PartitionObjective::kMinimizeSum);
  ASSERT_EQ(result.blocks.size(), 1u);
}

TEST(Dp, CheapHandoffSplitsForBottleneck) {
  const StageCostFn stage = [](int b, int e, int) { return static_cast<double>(e - b); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.0; };
  const auto result =
      dp_linear_partition(4, 4, stage, boundary, PartitionObjective::kMinimizeBottleneck);
  EXPECT_EQ(result.blocks.size(), 4u);
  EXPECT_DOUBLE_EQ(result.objective, 1.0);
}

TEST(Dp, InfeasibleStageSkipsWorker) {
  const StageCostFn stage = [](int b, int e, int w) {
    return w == 0 ? kInf : static_cast<double>(e - b);
  };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.0; };
  const auto result =
      dp_linear_partition(3, 2, stage, boundary, PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(result.valid());
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].worker, 1);
}

TEST(Dp, EmptyInputsInvalid) {
  const StageCostFn stage = [](int, int, int) { return 1.0; };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.0; };
  EXPECT_FALSE(dp_linear_partition(0, 3, stage, boundary,
                                   PartitionObjective::kMinimizeSum)
                   .valid());
  EXPECT_FALSE(dp_linear_partition(3, 0, stage, boundary,
                                   PartitionObjective::kMinimizeSum)
                   .valid());
}

TEST(Greedy, NeverWorseThanBoundAndValid) {
  util::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const int segments = 5 + static_cast<int>(rng.uniform_int(0, 10));
    const int workers = 2 + static_cast<int>(rng.uniform_int(0, 2));
    std::vector<double> seg_cost(static_cast<std::size_t>(segments));
    for (auto& v : seg_cost) v = rng.uniform(0.1, 2.0);
    std::vector<double> rate(static_cast<std::size_t>(workers));
    for (auto& v : rate) v = rng.uniform(0.5, 4.0);
    const StageCostFn stage = [&](int b, int e, int w) {
      double total = 0.0;
      for (int s = b; s < e; ++s) total += seg_cost[static_cast<std::size_t>(s)];
      return total / rate[static_cast<std::size_t>(w)];
    };
    const BoundaryCostFn boundary = [](int, int, int) { return 0.05; };
    const auto dp = dp_linear_partition(segments, workers, stage, boundary,
                                        PartitionObjective::kMinimizeBottleneck);
    const auto greedy =
        greedy_backprop_partition(segments, workers, rate, seg_cost, stage, boundary,
                                  PartitionObjective::kMinimizeBottleneck);
    ASSERT_TRUE(greedy.valid());
    // The O(n*m) heuristic stays near the exact optimum on these instances.
    EXPECT_LE(greedy.objective, dp.objective * 1.5 + 1e-9) << "trial " << trial;
    EXPECT_GE(greedy.objective, dp.objective - 1e-9);
  }
}

TEST(Greedy, BlocksCoverSegments) {
  const StageCostFn stage = [](int b, int e, int) { return static_cast<double>(e - b); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.0; };
  const auto result = greedy_backprop_partition(7, 3, {1.0, 1.0, 1.0}, {}, stage, boundary,
                                                PartitionObjective::kMinimizeBottleneck);
  int covered = 0;
  for (const auto& block : result.blocks) covered += block.end - block.begin;
  EXPECT_EQ(covered, 7);
}

TEST(Greedy, FasterWorkerGetsBiggerInitialBlock) {
  // With no refinement possible (flat costs), allocation follows rates.
  const StageCostFn stage = [](int b, int e, int) { return static_cast<double>(e - b); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.0; };
  const auto result =
      greedy_backprop_partition(12, 2, {3.0, 1.0}, std::vector<double>(12, 1.0), stage,
                                boundary, PartitionObjective::kMinimizeSum);
  ASSERT_TRUE(result.valid());
  // kMinimizeSum with equal worker speeds would merge; rates only shape the
  // initial cut, so just require full cover and order.
  int covered = 0;
  for (const auto& block : result.blocks) covered += block.end - block.begin;
  EXPECT_EQ(covered, 12);
}

TEST(Evaluate, SumAndBottleneckOutputs) {
  const StageCostFn stage = [](int b, int e, int) { return static_cast<double>(e - b); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.5; };
  std::vector<LinearPartitionResult::Block> blocks{{0, 2, 0}, {2, 3, 1}};
  double sum = 0.0, bottleneck = 0.0;
  evaluate_partition(blocks, stage, boundary, PartitionObjective::kMinimizeSum, &sum,
                     &bottleneck);
  EXPECT_DOUBLE_EQ(sum, 2.0 + 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(bottleneck, 2.0);  // stage 0; stage 1 = 1.0 + 0.5
}

}  // namespace
}  // namespace hidp::partition
