// Plan compilation: task DAG structure, validation, critical path, DOT.
#include <gtest/gtest.h>

#include "dnn/zoo/zoo.hpp"
#include "platform/device_db.hpp"
#include "runtime/plan.hpp"
#include "runtime/task_graph.hpp"

namespace hidp::runtime {
namespace {

struct Fixture {
  dnn::DnnGraph graph = dnn::zoo::build_resnet152();
  std::vector<platform::NodeModel> nodes = platform::paper_cluster();
  net::NetworkSpec network{nodes};
  partition::ClusterCostModel cost{graph, nodes, network,
                                   partition::NodeExecutionPolicy::kHierarchicalLocal};
};

TEST(PlanCompile, ModelPartitionProducesValidDag) {
  Fixture f;
  const auto mp = partition::plan_model_partition(f.cost, {0, 1, 2}, 0,
                                                  partition::PartitionObjective::kMinimizeSum);
  const Plan plan = compile_model_partition(mp, f.nodes, f.cost, 0, "test");
  ASSERT_FALSE(plan.empty());
  EXPECT_NO_THROW(validate_plan(plan, f.nodes));
  EXPECT_EQ(plan.global_mode, partition::PartitionMode::kModel);
  EXPECT_GE(plan.nodes_used, 1);
}

TEST(PlanCompile, DataPartitionProducesValidDag) {
  Fixture f;
  const auto dp = partition::plan_data_partition(f.cost, {0, 1, 2}, 0);
  const Plan plan = compile_data_partition(dp, f.nodes, f.cost, 0, "test");
  ASSERT_FALSE(plan.empty());
  EXPECT_NO_THROW(validate_plan(plan, f.nodes));
  EXPECT_EQ(plan.global_mode, partition::PartitionMode::kData);
  EXPECT_GE(plan.nodes_used, 2);  // slow nodes may receive an empty band
}

TEST(PlanCompile, ComputeFlopsMatchWork) {
  Fixture f;
  const auto mp = partition::plan_model_partition(f.cost, {0}, 0,
                                                  partition::PartitionObjective::kMinimizeSum);
  const Plan plan = compile_model_partition(mp, f.nodes, f.cost, 0, "test");
  double flops = 0.0;
  for (const auto& t : plan.tasks) flops += t.flops;
  EXPECT_NEAR(flops, f.graph.total_flops(), f.graph.total_flops() * 1e-9);
}

TEST(PlanCompile, DataPartitionFlopsIncludeHalo) {
  Fixture f;
  const auto dp = partition::plan_data_partition(f.cost, {0, 1, 2, 3}, 0);
  const Plan plan = compile_data_partition(dp, f.nodes, f.cost, 0, "test");
  double flops = 0.0;
  for (const auto& t : plan.tasks) flops += t.flops;
  EXPECT_GT(flops, f.graph.total_flops());
}

TEST(AppendLocal, DataParallelFansOut) {
  Fixture f;
  Plan plan;
  partition::LocalDecision decision;
  decision.config.mode = partition::LocalMode::kDataParallel;
  decision.config.shares = {{0, 0.6, 2}, {1, 0.4, 2}};
  const auto work = platform::WorkProfile::from_graph(f.graph, 0, 50);
  const auto exits = append_local_execution(plan, f.nodes, 1, work, decision, {}, "blk");
  EXPECT_EQ(exits.size(), 2u);
  EXPECT_EQ(plan.tasks.size(), 2u);
  for (const auto& t : plan.tasks) EXPECT_TRUE(t.deps.empty());
}

TEST(AppendLocal, PipelineChains) {
  Fixture f;
  Plan plan;
  partition::LocalDecision decision;
  decision.config.mode = partition::LocalMode::kPipeline;
  decision.config.shares = {{0, 0.5, 1}, {1, 0.5, 1}};
  const auto work = platform::WorkProfile::from_graph(f.graph, 0, 50);
  const auto exits = append_local_execution(plan, f.nodes, 1, work, decision, {}, "blk");
  ASSERT_EQ(exits.size(), 1u);
  ASSERT_EQ(plan.tasks.size(), 2u);
  EXPECT_EQ(plan.tasks[1].deps, (std::vector<int>{0}));
}

TEST(AppendLocal, EmptyWorkPassesDepsThrough) {
  Fixture f;
  Plan plan;
  partition::LocalDecision decision;
  const std::vector<int> deps{3, 4};
  const auto exits =
      append_local_execution(plan, f.nodes, 0, platform::WorkProfile{}, decision, deps, "nop");
  EXPECT_EQ(exits, deps);
  EXPECT_TRUE(plan.tasks.empty());
}

TEST(Validate, RejectsForwardDeps) {
  Fixture f;
  Plan plan;
  PlanTask t;
  t.kind = PlanTask::Kind::kCompute;
  t.node = 0;
  t.proc = 0;
  t.deps = {0};  // self-dependency
  plan.tasks.push_back(t);
  EXPECT_THROW(validate_plan(plan, f.nodes), std::logic_error);
}

TEST(Validate, RejectsBadProc) {
  Fixture f;
  Plan plan;
  PlanTask t;
  t.kind = PlanTask::Kind::kCompute;
  t.node = 0;
  t.proc = 99;
  plan.tasks.push_back(t);
  EXPECT_THROW(validate_plan(plan, f.nodes), std::logic_error);
}

TEST(CriticalPath, MatchesHandComputation) {
  Fixture f;
  Plan plan;
  PlanTask a;
  a.kind = PlanTask::Kind::kCompute;
  a.node = 0;
  a.proc = 0;
  a.seconds = 1.0;
  plan.tasks.push_back(a);
  PlanTask b = a;
  b.seconds = 2.0;
  plan.tasks.push_back(b);  // parallel with a
  PlanTask c;
  c.kind = PlanTask::Kind::kTransfer;
  c.from = 0;
  c.to = 1;
  c.bytes = 80'000'000;  // 1 s + latency
  c.deps = {0, 1};
  plan.tasks.push_back(c);
  plan.phases.explore_s = 0.25;
  const double cp = critical_path_s(plan, f.nodes, f.network);
  EXPECT_NEAR(cp, 0.25 + 2.0 + 1.0 + 4e-3, 1e-9);
}

TEST(CriticalPath, PredictionIsLowerBoundOfCompiledPlan) {
  Fixture f;
  const auto mp = partition::plan_model_partition(f.cost, {0, 1}, 0,
                                                  partition::PartitionObjective::kMinimizeSum);
  Plan plan = compile_model_partition(mp, f.nodes, f.cost, 0, "test");
  const double cp = critical_path_s(plan, f.nodes, f.network);
  // The DP's predicted latency and the DAG critical path agree closely
  // (both are contention-free estimates of the same schedule).
  EXPECT_NEAR(cp, mp.latency_s, mp.latency_s * 0.15);
}

TEST(PlanStats, CountsAndDepth) {
  Fixture f;
  const auto dp = partition::plan_data_partition(f.cost, {0, 1}, 0);
  const Plan plan = compile_data_partition(dp, f.nodes, f.cost, 0, "test");
  const PlanStats stats = analyze_plan(plan, f.nodes);
  EXPECT_GT(stats.compute_tasks, 0);
  EXPECT_GT(stats.transfer_tasks, 0);
  EXPECT_GT(stats.total_compute_s, 0.0);
  EXPECT_GT(stats.wireless_bytes, 0);
  EXPECT_GE(stats.depth, 3);  // scatter -> compute -> gather -> head
  EXPECT_EQ(stats.compute_s_per_node.size(), f.nodes.size());
}

TEST(PlanDot, EmitsGraphviz) {
  Fixture f;
  const auto dp = partition::plan_data_partition(f.cost, {0, 1}, 0);
  const Plan plan = compile_data_partition(dp, f.nodes, f.cost, 0, "test");
  const std::string dot = plan_to_dot(plan, f.nodes);
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("Jetson"), std::string::npos);
}

TEST(PlanDot, OutOfRangeIdsDegradeToPlaceholders) {
  // A debugging render of a malformed plan must not index past the node
  // vector (validate_plan throws on such plans; plan_to_dot must not).
  Fixture f;
  Plan plan;
  PlanTask compute;
  compute.kind = PlanTask::Kind::kCompute;
  compute.node = f.nodes.size() + 3;
  compute.proc = 99;
  plan.tasks.push_back(compute);
  PlanTask bad_proc;
  bad_proc.kind = PlanTask::Kind::kCompute;
  bad_proc.node = 0;
  bad_proc.proc = f.nodes[0].processor_count() + 7;
  plan.tasks.push_back(bad_proc);
  PlanTask transfer;
  transfer.kind = PlanTask::Kind::kTransfer;
  transfer.from = f.nodes.size();
  transfer.to = f.nodes.size() + 1;
  transfer.deps = {-1, 99, 0};  // only the backward in-range dep may render
  plan.tasks.push_back(transfer);
  const std::string dot = plan_to_dot(plan, f.nodes);
  EXPECT_NE(dot.find("node?"), std::string::npos);
  EXPECT_NE(dot.find("proc?"), std::string::npos);
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_EQ(dot.find("t-1"), std::string::npos);
  EXPECT_EQ(dot.find("t99"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t2"), std::string::npos);
}

}  // namespace
}  // namespace hidp::runtime
