// Wall-clock serving runtime: the clock abstraction (VirtualClock DES
// identity, WallClock pacing and wakes), the MPSC submission queue, the
// planner pool (inline bit-identity, epoch staleness, dead-shard
// delivery), and the TCP gateway end to end under real concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/hidp_strategy.hpp"
#include "runtime/fleet.hpp"
#include "runtime/gateway.hpp"
#include "runtime/planner_pool.hpp"
#include "runtime/workload.hpp"
#include "sim/clock.hpp"
#include "util/mpsc.hpp"

namespace hidp::runtime {
namespace {

using dnn::zoo::ModelId;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// ---- Clock -----------------------------------------------------------------

TEST(VirtualClock, JumpsWithoutBlockingAndNeverRewinds) {
  sim::VirtualClock clock;
  EXPECT_TRUE(clock.is_virtual());
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  EXPECT_DOUBLE_EQ(clock.advance_to(2.5), 2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  // A past target returns the target (the simulator clamps event times to
  // now itself) but never moves the clock backwards.
  EXPECT_DOUBLE_EQ(clock.advance_to(1.0), 1.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  // A drained DES has nothing to wait for; wake is a no-op.
  clock.wake();
  EXPECT_FALSE(clock.wait(10.0));
}

TEST(WallClock, AdvanceBlocksUntilTheTargetPasses) {
  sim::WallClock clock;
  EXPECT_FALSE(clock.is_virtual());
  const auto start = std::chrono::steady_clock::now();
  const double target = clock.now() + 0.05;
  const double reached = clock.advance_to(target);
  EXPECT_GE(reached, target);
  EXPECT_GE(seconds_since(start), 0.04);
}

TEST(WallClock, WakeInterruptsAdvanceEarly) {
  sim::WallClock clock;
  const double target = clock.now() + 30.0;  // far future: must not sleep it out
  std::thread waker([&clock] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    clock.wake();
  });
  const auto start = std::chrono::steady_clock::now();
  const double reached = clock.advance_to(target);
  waker.join();
  EXPECT_LT(reached, target);
  EXPECT_LT(seconds_since(start), 10.0);
}

TEST(WallClock, WakeIsLatchedForTheNextWait) {
  sim::WallClock clock;
  // A wake with no waiter must not be lost: the next wait consumes it.
  clock.wake();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(clock.wait(30.0));
  EXPECT_LT(seconds_since(start), 10.0);
  // Consumed: a short second wait times out instead.
  EXPECT_FALSE(clock.wait(0.01));
}

// ---- MpscQueue -------------------------------------------------------------

TEST(MpscQueue, CollectsConcurrentProducersFifoPerProducer) {
  util::MpscQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i);
    });
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(queue.size(), static_cast<std::size_t>(kProducers * kPerProducer));

  const auto batch = queue.drain();
  EXPECT_TRUE(queue.empty());
  ASSERT_EQ(batch.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  // Per-producer FIFO: each producer's items appear in its push order.
  std::vector<int> last(kProducers, -1);
  for (const int value : batch) {
    const int producer = value / kPerProducer;
    EXPECT_LT(last[producer], value % kPerProducer);
    last[producer] = value % kPerProducer;
  }
}

// ---- Simulator under an explicit clock -------------------------------------

std::vector<RequestRecord> run_paper_service(const std::vector<RequestSpec>& workload,
                                             sim::Clock* clock) {
  Cluster cluster(platform::paper_cluster());
  if (clock != nullptr) cluster.simulator().set_clock(clock);
  core::HidpStrategy strategy;
  InferenceService service(cluster, strategy, 1);
  ReplayArrivals arrivals(workload);
  service.attach(&arrivals);
  auto records = service.run();
  cluster.simulator().set_clock(nullptr);
  return records;
}

void expect_bit_identical(const std::vector<RequestRecord>& a,
                          const std::vector<RequestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].strategy, b[i].strategy);
    EXPECT_EQ(a[i].mode, b[i].mode);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].nodes_used, b[i].nodes_used);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].dispatch_s, b[i].dispatch_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].finish_s, b[i].finish_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].flops, b[i].flops) << "request " << a[i].id;
  }
}

/// The clock abstraction must not perturb the DES: a simulator with an
/// explicitly installed VirtualClock reproduces the default-clock run bit
/// for bit on the paper workloads.
TEST(SimulatorClock, ExplicitVirtualClockIsBitIdenticalToDefault) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kResNet152), 8, 0.2);
  const auto default_records = run_paper_service(workload, nullptr);
  sim::VirtualClock explicit_clock;
  const auto explicit_records = run_paper_service(workload, &explicit_clock);
  expect_bit_identical(default_records, explicit_records);
}

// ---- PlannerPool -----------------------------------------------------------

PlannerPool::StrategyFactory hidp_factory() {
  return [] { return std::make_unique<core::HidpStrategy>(); };
}

std::size_t terminal_count(const ServiceStats& stats) {
  return stats.completed + stats.rejected + stats.dropped + stats.deadline_misses +
         stats.failed;
}

/// Drives a service whose plans come from a PlannerPool to completion under
/// the VirtualClock: the simulator pump waits for the pool between events,
/// so every plan is delivered at the sim time it was requested.
std::vector<RequestRecord> run_pooled_service(const std::vector<RequestSpec>& workload,
                                              std::size_t workers, ServiceStats* stats) {
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy strategy;
  InferenceService service(cluster, strategy, 1);
  PlannerPool pool(workers, hidp_factory());
  service.set_plan_provider(&pool);
  ReplayArrivals arrivals(workload);
  service.attach(&arrivals);
  cluster.simulator().set_pump([&] {
    pool.wait_idle();
    pool.pump();
    return terminal_count(service.stats()) < workload.size();
  });
  auto records = service.run();
  cluster.simulator().set_pump(nullptr);
  service.set_plan_provider(nullptr);
  if (stats != nullptr) *stats = service.stats();
  return records;
}

/// A single-worker pool preserves delivery order, so off-thread planning is
/// the same computation as inline planning — records match bit for bit.
TEST(PlannerPool, SingleWorkerIsBitIdenticalToInlinePlanning) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kEfficientNetB0), 8, 0.15);
  const auto inline_records = run_paper_service(workload, nullptr);
  ServiceStats pooled_stats;
  const auto pooled_records = run_pooled_service(workload, 1, &pooled_stats);
  expect_bit_identical(inline_records, pooled_records);
  EXPECT_EQ(pooled_stats.async_plans, workload.size());
  EXPECT_EQ(pooled_stats.stale_plans, 0u);
}

/// Multiple workers may reorder deliveries, but every request still reaches
/// its terminal outcome with one async plan each and no stale discards.
TEST(PlannerPool, MultiWorkerCompletesEveryRequest) {
  ModelSet models;
  const std::vector<RequestSpec> workload =
      periodic_stream(models.graph(ModelId::kResNet152), 10, 0.1);
  ServiceStats stats;
  const auto records = run_pooled_service(workload, 3, &stats);
  ASSERT_EQ(records.size(), workload.size());
  for (const RequestRecord& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted) << "request " << record.id;
  }
  EXPECT_EQ(stats.completed, workload.size());
  EXPECT_EQ(stats.async_plans, workload.size());
  EXPECT_EQ(stats.stale_plans, 0u);
}

/// A plan computed across a cluster mutation is stale: the epoch check at
/// delivery discards it and replans against the current cluster. Driven
/// deterministically — the sim drains with the job queued, the epoch bumps,
/// then the pool pumps.
TEST(PlannerPool, StalePlanIsDiscardedAndReplanned) {
  ModelSet models;
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy strategy;
  InferenceService service(cluster, strategy, 1);
  PlannerPool pool(1, hidp_factory());
  service.set_plan_provider(&pool);
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});

  // The arrival fires and requests a plan; the sim drains with it in flight.
  cluster.simulator().run();
  pool.wait_idle();
  EXPECT_EQ(service.stats().async_plans, 1u);
  EXPECT_EQ(pool.planned(), 1u);

  // A DVFS event on a non-leader node bumps the epoch (shard stays live).
  const std::uint64_t before = cluster.membership_epoch();
  cluster.set_dvfs_scale(0, 0.5);
  ASSERT_GT(cluster.membership_epoch(), before);

  // Delivery detects the mismatch, discards and re-requests.
  pool.pump();
  EXPECT_EQ(service.stats().stale_plans, 1u);
  EXPECT_EQ(service.stats().async_plans, 2u);
  EXPECT_EQ(service.stats().completed, 0u);

  // The replacement plan is fresh: delivery dispatches and the run ends.
  pool.wait_idle();
  pool.pump();
  cluster.simulator().run();
  const auto records = service.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(service.stats().completed, 1u);
  EXPECT_EQ(service.stats().stale_plans, 1u);
  service.set_plan_provider(nullptr);
}

/// When the event that staled the plan also killed the shard, the request
/// routes through the standard churn machinery to a terminal failure
/// instead of replanning forever against a dead shard.
TEST(PlannerPool, StalePlanOnDeadShardFailsTerminally) {
  ModelSet models;
  std::vector<platform::NodeModel> nodes;
  nodes.push_back(platform::make_device("Jetson TX2"));
  nodes.push_back(platform::make_device("Jetson TX2"));
  Cluster cluster(std::move(nodes));
  core::HidpStrategy strategy;
  InferenceService service(cluster, strategy, 0);
  PlannerPool pool(1, hidp_factory());
  service.set_plan_provider(&pool);
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});

  cluster.simulator().run();
  pool.wait_idle();
  // Leader death: bumps the epoch AND takes the shard down.
  cluster.set_node_available(0, false);
  pool.pump();
  cluster.simulator().run();

  EXPECT_EQ(service.stats().stale_plans, 1u);
  EXPECT_EQ(service.stats().async_plans, 1u);  // no replan against a dead shard
  EXPECT_EQ(service.stats().failed, 1u);
  const auto records = service.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kFailed);
  service.set_plan_provider(nullptr);
}

// ---- Gateway ---------------------------------------------------------------

/// Two (Orin NX, TX2) shards behind HiDP planning, as in the examples.
struct GatewayFixture {
  GatewayFixture()
      : cluster(make_nodes()), routing(), fleet(cluster, make_shards(), routing) {}

  static std::vector<platform::NodeModel> make_nodes() {
    std::vector<platform::NodeModel> nodes;
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(platform::make_device("Jetson Orin NX"));
      nodes.push_back(platform::make_device("Jetson TX2"));
    }
    return nodes;
  }
  std::vector<FleetShard> make_shards() {
    shard_strategies.clear();
    std::vector<FleetShard> shards;
    for (std::size_t s = 0; s < 2; ++s) {
      shard_strategies.push_back(std::make_unique<core::HidpStrategy>());
      FleetShard shard;
      shard.strategy = shard_strategies.back().get();
      shard.nodes = {2 * s, 2 * s + 1};
      shard.leader = 2 * s;
      shards.push_back(std::move(shard));
    }
    return shards;
  }
  Gateway::ModelRegistry registry() {
    Gateway::ModelRegistry models_by_name;
    for (const ModelId id : {ModelId::kEfficientNetB0, ModelId::kResNet152}) {
      models_by_name[dnn::zoo::model_name(id)] = &models.graph(id);
    }
    return models_by_name;
  }

  ModelSet models;
  std::vector<std::unique_ptr<core::HidpStrategy>> shard_strategies;
  Cluster cluster;
  LeastLoadedRouting routing;
  ServiceFleet fleet;
};

/// The acceptance scenario: >= 4 concurrent TCP clients against the
/// WallClock-driven fleet, each receiving its streamed terminal outcome,
/// with balanced gateway and fleet counters afterwards.
TEST(Gateway, ServesConcurrentTcpClientsToTerminalOutcomes) {
  GatewayFixture fixture;
  Gateway::Options options;
  options.planner_workers = 2;
  Gateway gateway(fixture.fleet, fixture.registry(), options,
                  [] { return std::make_unique<core::HidpStrategy>(); });
  gateway.start();
  ASSERT_TRUE(gateway.running());
  ASSERT_GT(gateway.port(), 0);

  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::vector<int> done(kClients, 0);
  std::atomic<int> accepted{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client;
      ASSERT_TRUE(client.connect(gateway.port()));
      const char* model = c % 2 == 0 ? "EfficientNetB0" : "ResNet152";
      for (int r = 0; r < kPerClient; ++r) {
        const int id = c * kPerClient + r;
        const std::string line = "{\"id\":" + std::to_string(id) + ",\"model\":\"" +
                                 model + "\",\"qos\":\"standard\"}";
        ASSERT_TRUE(client.send_line(line));
        bool terminal = false;
        while (!terminal) {
          const auto response = client.read_line(30.0);
          ASSERT_TRUE(response.has_value()) << "client " << c << " request " << id;
          const auto event = jsonl::string_field(*response, "event");
          ASSERT_TRUE(event.has_value()) << *response;
          ASSERT_NE(*event, "error") << *response;
          const auto echoed = jsonl::number_field(*response, "id");
          ASSERT_TRUE(echoed.has_value()) << *response;
          EXPECT_EQ(static_cast<int>(*echoed), id) << *response;
          if (*event == "accepted") {
            ++accepted;
          } else if (*event == "done") {
            const auto outcome = jsonl::string_field(*response, "outcome");
            ASSERT_TRUE(outcome.has_value()) << *response;
            EXPECT_FALSE(outcome->empty());
            const auto latency = jsonl::number_field(*response, "latency_ms");
            ASSERT_TRUE(latency.has_value()) << *response;
            EXPECT_GE(*latency, 0.0);
            terminal = true;
          }
        }
        ++done[c];
      }
    });
  }
  for (auto& client : clients) client.join();
  gateway.stop();
  EXPECT_FALSE(gateway.running());

  constexpr std::size_t kTotal = kClients * kPerClient;
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(done[c], kPerClient) << "client " << c;
  EXPECT_EQ(accepted.load(), static_cast<int>(kTotal));
  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.received, kTotal);
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.responded, kTotal);
  EXPECT_EQ(stats.bad_lines, 0u);
  // Fleet accounting balances: every admitted request reached exactly one
  // terminal outcome.
  const ServiceStats fleet_stats = fixture.fleet.stats();
  EXPECT_EQ(fleet_stats.submitted, kTotal);
  EXPECT_EQ(terminal_count(fleet_stats), kTotal);
  // All plans came off the driver thread.
  ASSERT_NE(gateway.planner_pool(), nullptr);
  EXPECT_GE(gateway.planner_pool()->planned(), kTotal);
}

/// Malformed lines and unknown models get streamed "error" events (and a
/// bad_lines count) without poisoning the connection for later requests.
TEST(Gateway, RejectsBadLinesAndKeepsTheConnectionUsable) {
  GatewayFixture fixture;
  Gateway gateway(fixture.fleet, fixture.registry());
  gateway.start();

  LineClient client;
  ASSERT_TRUE(client.connect(gateway.port()));

  ASSERT_TRUE(client.send_line("this is not json"));
  auto response = client.read_line(10.0);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(jsonl::string_field(*response, "event").value_or(""), "error");

  ASSERT_TRUE(client.send_line("{\"id\":7,\"model\":\"NoSuchNet\"}"));
  response = client.read_line(10.0);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(jsonl::string_field(*response, "event").value_or(""), "error");
  EXPECT_EQ(static_cast<int>(jsonl::number_field(*response, "id").value_or(-1)), 7);

  // The same connection still serves a valid request afterwards.
  ASSERT_TRUE(client.send_line("{\"id\":8,\"model\":\"EfficientNetB0\"}"));
  bool terminal = false;
  while (!terminal) {
    response = client.read_line(30.0);
    ASSERT_TRUE(response.has_value());
    const auto event = jsonl::string_field(*response, "event").value_or("");
    ASSERT_NE(event, "error") << *response;
    terminal = event == "done";
  }
  gateway.stop();
  EXPECT_EQ(gateway.stats().bad_lines, 2u);
  EXPECT_EQ(gateway.stats().responded, 1u);
}

/// The {"cmd":"stats"} protocol line answers with the lifecycle counters
/// plus the planner delta counters, readable mid-run from a client thread
/// (the driver mirrors the fleet's driver-thread-only stats into atomics).
TEST(Gateway, StatsLineReportsPlannerCountersOverTcp) {
  GatewayFixture fixture;
  Gateway gateway(fixture.fleet, fixture.registry());
  gateway.start();

  LineClient client;
  ASSERT_TRUE(client.connect(gateway.port()));

  // Drive one request to its terminal first: planning has then built at
  // least one cost model, and the driver has pumped the planner counters
  // into the cross-thread mirror.
  ASSERT_TRUE(client.send_line("{\"id\":1,\"model\":\"EfficientNetB0\"}"));
  bool terminal = false;
  while (!terminal) {
    const auto response = client.read_line(30.0);
    ASSERT_TRUE(response.has_value());
    terminal = jsonl::string_field(*response, "event").value_or("") == "done";
  }

  ASSERT_TRUE(client.send_line("{\"id\":2,\"cmd\":\"stats\"}"));
  auto response = client.read_line(10.0);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(jsonl::string_field(*response, "event").value_or(""), "stats");
  EXPECT_EQ(static_cast<int>(jsonl::number_field(*response, "id").value_or(-1)), 2);
  EXPECT_GE(jsonl::number_field(*response, "received").value_or(0.0), 1.0);
  EXPECT_GE(jsonl::number_field(*response, "responded").value_or(0.0), 1.0);
  EXPECT_GE(jsonl::number_field(*response, "cold_replans").value_or(0.0), 1.0);
  ASSERT_TRUE(jsonl::number_field(*response, "repaired_plans").has_value());
  ASSERT_TRUE(jsonl::number_field(*response, "partial_repriced_rows").has_value());

  // Unknown commands are rejected without poisoning the connection.
  ASSERT_TRUE(client.send_line("{\"cmd\":\"bogus\"}"));
  response = client.read_line(10.0);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(jsonl::string_field(*response, "event").value_or(""), "error");

  gateway.stop();
  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.responded, 1u);
  EXPECT_GE(stats.cold_replans, 1u);
  EXPECT_EQ(stats.bad_lines, 1u);
}

/// Programmatic submission from multiple threads: every on_done callback
/// fires exactly once with a terminal record.
TEST(Gateway, ProgrammaticSubmitFromConcurrentThreads) {
  GatewayFixture fixture;
  Gateway gateway(fixture.fleet, fixture.registry());
  gateway.start();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2;
  std::vector<std::future<RequestOutcome>> outcomes;
  std::vector<std::thread> submitters;
  std::vector<std::promise<RequestOutcome>> promises(kThreads * kPerThread);
  for (auto& promise : promises) outcomes.push_back(promise.get_future());
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        GatewayRequest request;
        request.model = &fixture.models.graph(ModelId::kEfficientNetB0);
        request.qos = QosClass::kInteractive;
        std::promise<RequestOutcome>& promise = promises[t * kPerThread + i];
        gateway.submit(request, [&promise](const RequestRecord& record) {
          promise.set_value(record.outcome);
        });
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  for (auto& outcome : outcomes) {
    ASSERT_EQ(outcome.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(outcome.get(), RequestOutcome::kCompleted);
  }
  gateway.stop();
  EXPECT_EQ(gateway.stats().responded, static_cast<std::uint64_t>(kThreads * kPerThread));
  // A null model is rejected at the submission boundary, not in the driver.
  EXPECT_THROW(gateway.submit(GatewayRequest{}, [](const RequestRecord&) {}),
               std::invalid_argument);
}

/// stop() drains: requests in flight when shutdown begins still reach their
/// terminal outcome and their callbacks fire before stop() returns.
TEST(Gateway, StopDrainsInFlightRequests) {
  GatewayFixture fixture;
  Gateway gateway(fixture.fleet, fixture.registry());
  gateway.start();
  std::atomic<int> delivered{0};
  for (int i = 0; i < 3; ++i) {
    GatewayRequest request;
    request.model = &fixture.models.graph(ModelId::kResNet152);
    gateway.submit(request, [&delivered](const RequestRecord&) { ++delivered; });
  }
  gateway.stop();  // immediate: no waiting for completion first
  EXPECT_EQ(delivered.load(), 3);
  EXPECT_EQ(gateway.stats().responded, 3u);
}

// ---- Line-protocol JSON helpers --------------------------------------------

TEST(JsonLine, ExtractsStringAndNumberFields) {
  const std::string line =
      "{\"id\":42,\"model\":\"ResNet152\",\"qos\":\"best-effort\",\"deadline_ms\":250.5}";
  EXPECT_EQ(jsonl::string_field(line, "model").value_or(""), "ResNet152");
  EXPECT_EQ(jsonl::string_field(line, "qos").value_or(""), "best-effort");
  EXPECT_DOUBLE_EQ(jsonl::number_field(line, "id").value_or(0), 42.0);
  EXPECT_DOUBLE_EQ(jsonl::number_field(line, "deadline_ms").value_or(0), 250.5);
  EXPECT_FALSE(jsonl::string_field(line, "missing").has_value());
  EXPECT_FALSE(jsonl::number_field(line, "model").has_value());
}

}  // namespace
}  // namespace hidp::runtime
