// Network fault injection: dynamic NetworkSpec state (radio scales, link
// up/down) and its plan-cache equality contract, mid-flight transfer
// re-timing and abort accounting, per-transfer timeout watchdogs, the
// Cluster link-churn authority (epoch + kLink fan-out), degradation
// processes (scripted, Gilbert–Elliott), injector scheduling, engine
// failure + service replan on dead/degraded links, granular cost-model
// invalidation, degradation-aware probing, and fleet partition failover.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/hidp_strategy.hpp"
#include "net/prober.hpp"
#include "runtime/churn.hpp"
#include "runtime/fleet.hpp"
#include "runtime/metrics.hpp"
#include "runtime/netfault.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

using dnn::zoo::ModelId;

std::vector<platform::NodeModel> uniform_cluster(std::size_t n) {
  std::vector<platform::NodeModel> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(platform::make_device("Jetson TX2"));
  return nodes;
}

// ---- NetworkSpec dynamic state ---------------------------------------------

TEST(NetworkSpecDegradation, RadioScaleAffectsLinksNotLoopback) {
  net::NetworkSpec spec(platform::paper_cluster());
  const net::LinkSpec healthy = spec.link(0, 1);
  spec.set_radio_scale(1, 0.5, 2.0);
  const net::LinkSpec degraded = spec.link(0, 1);
  EXPECT_DOUBLE_EQ(degraded.bandwidth_bps, std::min(spec.base_radio_bw_bps(0),
                                                    spec.base_radio_bw_bps(1) * 0.5));
  // Only node 1's protocol latency doubles; node 0's is untouched.
  EXPECT_DOUBLE_EQ(degraded.latency_s,
                   spec.base_radio_latency_s(0) + 2.0 * spec.base_radio_latency_s(1));
  EXPECT_LT(degraded.bandwidth_bps, healthy.bandwidth_bps);
  // The base characteristics are preserved for restoration.
  EXPECT_DOUBLE_EQ(spec.base_radio_bw_bps(1), healthy.bandwidth_bps);
  // Loopback stays free regardless of the node's radio health.
  const net::LinkSpec loop = spec.link(1, 1);
  EXPECT_DOUBLE_EQ(loop.latency_s, 0.0);
  EXPECT_LT(loop.transfer_s(1 << 20), 1e-5);
  // 1.0/1.0 restores exactly (absolute, not cumulative).
  spec.set_radio_scale(1, 0.5, 2.0);
  spec.set_radio_scale(1, 1.0, 1.0);
  const net::LinkSpec restored = spec.link(0, 1);
  EXPECT_DOUBLE_EQ(restored.bandwidth_bps, healthy.bandwidth_bps);
  EXPECT_DOUBLE_EQ(restored.latency_s, healthy.latency_s);
  EXPECT_THROW(spec.set_radio_scale(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(spec.set_radio_scale(0, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(spec.set_radio_scale(9, 1.0, 1.0), std::out_of_range);
}

TEST(NetworkSpecDegradation, EqualityTracksDynamicState) {
  net::NetworkSpec a(platform::paper_cluster());
  net::NetworkSpec b(platform::paper_cluster());
  EXPECT_TRUE(a == b);
  a.set_radio_scale(2, 0.25, 1.0);
  EXPECT_TRUE(a != b);
  a.set_radio_scale(2, 1.0, 1.0);
  EXPECT_TRUE(a == b);
  a.set_link_up(0, 3, false);
  EXPECT_TRUE(a != b);
  a.set_link_up(3, 0, true);  // symmetric endpoints
  EXPECT_TRUE(a == b);
}

TEST(NetworkSpecDegradation, DownLinkHasInfiniteTransferAndZeroBeta) {
  net::NetworkSpec spec(platform::paper_cluster());
  EXPECT_FALSE(spec.any_link_down());
  spec.set_link_up(0, 1, false);
  EXPECT_TRUE(spec.any_link_down());
  EXPECT_FALSE(spec.link_up(0, 1));
  EXPECT_FALSE(spec.link_up(1, 0));  // symmetric
  EXPECT_TRUE(spec.link_up(0, 2));
  const net::LinkSpec down = spec.link(0, 1);
  EXPECT_FALSE(down.up);
  EXPECT_TRUE(std::isinf(down.transfer_s(1)));
  EXPECT_DOUBLE_EQ(spec.beta_bps(0, 1), 0.0);
  EXPECT_GT(spec.beta_bps(0, 2), 0.0);
  spec.set_link_up(0, 1, true);
  EXPECT_TRUE(spec.link_up(0, 1));
  EXPECT_FALSE(spec.any_link_down());
  EXPECT_THROW(spec.set_link_up(1, 1, false), std::invalid_argument);
}

// ---- WirelessNetwork: re-timing, aborts, watchdogs -------------------------

TEST(WirelessNetworkDegradation, MidFlightTransferRetimesAtNewRate) {
  sim::Simulator sim;
  net::WirelessNetwork net(sim, platform::paper_cluster());
  const double healthy_end = net.spec().link(0, 1).transfer_s(80'000'000);
  double delivered = -1.0;
  net.transfer(0, 1, 80'000'000, 0.0, [&](sim::Time t) { delivered = t; });
  sim.schedule_at(0.5, [&] { net.set_radio_scale(1, 0.5, 1.0); });
  sim.run();
  // The remaining payload fraction is re-priced at the halved rate from
  // the degradation instant (the spec still carries the 0.5 scale here).
  const double slow_full = net.spec().link(0, 1).transfer_s(80'000'000);
  const double expected = 0.5 + ((healthy_end - 0.5) / healthy_end) * slow_full;
  EXPECT_NEAR(delivered, expected, 1e-9);
  EXPECT_GT(delivered, healthy_end);
  // A delivered transfer still accounts its full payload.
  EXPECT_EQ(net.bytes_transferred(), 80'000'000);
  EXPECT_EQ(net.transfers_in_flight(), 0u);
}

TEST(WirelessNetworkDegradation, LinkDownAbortsMidFlightWithProRatedAccounting) {
  sim::Simulator sim;
  net::WirelessNetwork net(sim, platform::paper_cluster());
  const double end = net.spec().link(0, 1).transfer_s(80'000'000);  // 1.004 s
  double delivered = -1.0;
  std::vector<net::TransferAbort> aborts;
  net.transfer(
      0, 1, 80'000'000, 0.0, [&](sim::Time t) { delivered = t; },
      [&](const net::TransferAbort& a) { aborts.push_back(a); });
  const double abort_at = end / 2.0;
  sim.schedule_at(abort_at, [&] { net.set_link_up(0, 1, false); });
  sim.run();
  // No ghost delivery; exactly one abort at the partition instant.
  EXPECT_DOUBLE_EQ(delivered, -1.0);
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_EQ(aborts[0].cause, net::TransferAbort::Cause::kLinkDown);
  EXPECT_DOUBLE_EQ(aborts[0].time_s, abort_at);
  // Half the wall-clock window elapsed: half the payload was delivered,
  // and bytes_transferred() rolled back the undelivered remainder.
  EXPECT_EQ(aborts[0].bytes_delivered, 40'000'000);
  EXPECT_EQ(net.bytes_transferred(), 40'000'000);
  // The radios freed at the abort instant, not the original end.
  EXPECT_NEAR(net.radio_busy_s(0), abort_at, 1e-9);
  EXPECT_NEAR(net.radio_busy_s(1), abort_at, 1e-9);
  EXPECT_EQ(net.transfers_in_flight(), 0u);
  // New transfers on the dead link are rejected; other pairs still work.
  EXPECT_THROW(net.transfer(0, 1, 100, 0.0, [](sim::Time) {}), std::runtime_error);
  double ok = -1.0;
  net.transfer(0, 2, 100, 0.0, [&](sim::Time t) { ok = t; });
  sim.run();
  EXPECT_GT(ok, 0.0);
}

TEST(WirelessNetworkDegradation, TimeoutWatchdogAbortsSlowTransfer) {
  sim::Simulator sim;
  net::WirelessNetwork net(sim, platform::paper_cluster());
  double delivered = -1.0;
  std::vector<net::TransferAbort> aborts;
  net.transfer(
      0, 1, 80'000'000, 0.0, [&](sim::Time t) { delivered = t; },
      [&](const net::TransferAbort& a) { aborts.push_back(a); }, /*timeout_s=*/0.5);
  sim.run();
  EXPECT_DOUBLE_EQ(delivered, -1.0);
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_EQ(aborts[0].cause, net::TransferAbort::Cause::kTimeout);
  EXPECT_DOUBLE_EQ(aborts[0].time_s, 0.5);
  EXPECT_GT(aborts[0].bytes_delivered, 0);
  EXPECT_LT(aborts[0].bytes_delivered, 80'000'000);
  EXPECT_EQ(net.bytes_transferred(), aborts[0].bytes_delivered);
  // A fast transfer under the same watchdog delivers normally.
  double fast = -1.0;
  std::size_t fast_aborts = 0;
  net.transfer(
      2, 3, 1'000'000, sim.now(), [&](sim::Time t) { fast = t; },
      [&](const net::TransferAbort&) { ++fast_aborts; }, /*timeout_s=*/0.5);
  sim.run();
  EXPECT_GT(fast, 0.0);
  EXPECT_EQ(fast_aborts, 0u);
}

TEST(WirelessNetworkDegradation, SharedMediumFreedAtAbortInstant) {
  sim::Simulator sim;
  net::WirelessNetwork net(sim, platform::paper_cluster(), net::MediumMode::kSharedMedium);
  const double end = net.spec().link(0, 1).transfer_s(80'000'000);
  net.transfer(
      0, 1, 80'000'000, 0.0, [](sim::Time) { FAIL() << "aborted transfer delivered"; },
      [](const net::TransferAbort&) {});
  sim.schedule_at(0.5, [&] { net.set_link_up(0, 1, false); });
  // Submitted after the abort: the shared medium must be free at 0.6, not
  // still reserved until the doomed transfer's original end.
  double second = -1.0;
  sim.schedule_at(0.6, [&] {
    net.transfer(2, 3, 8'000'000, sim.now(), [&](sim::Time t) { second = t; });
  });
  sim.run();
  ASSERT_GT(second, 0.0);
  EXPECT_LT(second, end);  // would finish after `end` had the medium stayed busy
  EXPECT_NEAR(second, 0.6 + net.spec().link(2, 3).transfer_s(8'000'000), 1e-9);
}

TEST(WirelessNetworkDegradation, LoopbackUnaffectedByScalingAndPartitions) {
  sim::Simulator sim;
  net::WirelessNetwork net(sim, platform::paper_cluster());
  net.set_radio_scale(1, 0.01, 10.0);
  net.set_link_up(0, 1, false);
  double delivered = -1.0;
  net.transfer(1, 1, 1 << 30, 0.5, [&](sim::Time t) { delivered = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered, 0.5);
  EXPECT_EQ(net.bytes_transferred(), 0);
  EXPECT_DOUBLE_EQ(net.radio_busy_s(1), 0.0);
}

// ---- Cluster as the link-churn authority -----------------------------------

TEST(ClusterLinkChurn, RadioScaleBumpsEpochAndFansOutKLink) {
  Cluster cluster(uniform_cluster(3));
  std::vector<NodeEvent> events;
  cluster.add_observer([&](const NodeEvent& e) { events.push_back(e); });
  cluster.set_radio_scale(1, 1.0, 1.0);  // already healthy: no-op
  EXPECT_EQ(cluster.membership_epoch(), 0u);
  EXPECT_TRUE(events.empty());
  cluster.set_radio_scale(1, 0.25, 2.0);
  EXPECT_EQ(cluster.membership_epoch(), 1u);
  EXPECT_DOUBLE_EQ(cluster.radio_bw_scale(1), 0.25);
  EXPECT_DOUBLE_EQ(cluster.radio_latency_scale(1), 2.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, NodeEvent::Kind::kLink);
  EXPECT_EQ(events[0].node, 1u);
  EXPECT_EQ(events[0].peer, NodeEvent::kNoPeer);
  EXPECT_DOUBLE_EQ(events[0].bw_scale, 0.25);
  EXPECT_DOUBLE_EQ(events[0].latency_scale, 2.0);
  cluster.set_radio_scale(1, 0.25, 2.0);  // idempotent
  EXPECT_EQ(cluster.membership_epoch(), 1u);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_THROW(cluster.set_radio_scale(9, 0.5, 1.0), std::out_of_range);
  EXPECT_THROW(cluster.set_radio_scale(0, -1.0, 1.0), std::invalid_argument);
}

TEST(ClusterLinkChurn, LinkUpDownBumpsEpochAndFansOutKLink) {
  Cluster cluster(uniform_cluster(3));
  std::vector<NodeEvent> events;
  cluster.add_observer([&](const NodeEvent& e) { events.push_back(e); });
  cluster.set_link_up(0, 2, true);  // already up: no-op
  EXPECT_EQ(cluster.membership_epoch(), 0u);
  cluster.set_link_up(0, 2, false);
  EXPECT_EQ(cluster.membership_epoch(), 1u);
  EXPECT_FALSE(cluster.link_up(0, 2));
  EXPECT_FALSE(cluster.link_up(2, 0));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, NodeEvent::Kind::kLink);
  EXPECT_EQ(events[0].node, 0u);
  EXPECT_EQ(events[0].peer, 2u);
  EXPECT_FALSE(events[0].link_up);
  cluster.set_link_up(2, 0, false);  // idempotent (symmetric endpoints)
  EXPECT_EQ(cluster.membership_epoch(), 1u);
  cluster.set_link_up(0, 2, true);
  EXPECT_EQ(cluster.membership_epoch(), 2u);
  EXPECT_TRUE(cluster.link_up(0, 2));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].link_up);
  EXPECT_THROW(cluster.set_link_up(1, 1, false), std::invalid_argument);
  EXPECT_THROW(cluster.set_link_up(0, 9, false), std::out_of_range);
}

// ---- degradation processes and the injector --------------------------------

TEST(NetDegradationProcesses, ScriptedReplaysSortedTrace) {
  NetEvent late;
  late.time_s = 0.5;
  late.action = NetEvent::Action::kLinkUp;
  late.node = 0;
  late.peer = 1;
  NetEvent early;
  early.time_s = 0.2;
  early.action = NetEvent::Action::kRadioScale;
  early.node = 2;
  early.bw_scale = 0.1;
  NetEvent mid;
  mid.time_s = 0.3;
  mid.action = NetEvent::Action::kLinkDown;
  mid.node = 0;
  mid.peer = 1;
  ScriptedDegradation trace({late, early, mid});
  auto e1 = trace.next(0.0);
  auto e2 = trace.next(0.0);
  auto e3 = trace.next(0.0);
  ASSERT_TRUE(e1 && e2 && e3);
  EXPECT_DOUBLE_EQ(e1->time_s, 0.2);
  EXPECT_EQ(e1->action, NetEvent::Action::kRadioScale);
  EXPECT_DOUBLE_EQ(e2->time_s, 0.3);
  EXPECT_DOUBLE_EQ(e3->time_s, 0.5);
  EXPECT_FALSE(trace.next(0.0).has_value());
}

TEST(NetDegradationProcesses, GilbertElliottDeterministicAlternatingAndBounded) {
  GilbertElliottDegradation::Options options;
  options.nodes = {0, 2};
  options.good_s = 0.3;
  options.bad_s = 0.15;
  options.bad_bw_scale = 0.1;
  options.bad_latency_scale = 2.0;
  options.horizon_s = 4.0;
  options.seed = 7;
  const auto drain = [](GilbertElliottDegradation& process) {
    std::vector<NetEvent> events;
    while (auto event = process.next(0.0)) events.push_back(*event);
    return events;
  };
  GilbertElliottDegradation a(options), b(options);
  const auto ea = drain(a);
  const auto eb = drain(b);
  ASSERT_FALSE(ea.empty());
  ASSERT_EQ(ea.size(), eb.size());
  double last = 0.0;
  std::vector<bool> degraded(3, false);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea[i].time_s, eb[i].time_s);
    EXPECT_EQ(ea[i].node, eb[i].node);
    EXPECT_DOUBLE_EQ(ea[i].bw_scale, eb[i].bw_scale);
    EXPECT_GE(ea[i].time_s, last);
    EXPECT_LT(ea[i].time_s, options.horizon_s);
    last = ea[i].time_s;
    EXPECT_EQ(ea[i].action, NetEvent::Action::kRadioScale);
    // Each node strictly alternates degrade -> heal -> degrade ...
    if (!degraded[ea[i].node]) {
      EXPECT_DOUBLE_EQ(ea[i].bw_scale, options.bad_bw_scale);
      EXPECT_DOUBLE_EQ(ea[i].latency_scale, options.bad_latency_scale);
    } else {
      EXPECT_DOUBLE_EQ(ea[i].bw_scale, 1.0);
      EXPECT_DOUBLE_EQ(ea[i].latency_scale, 1.0);
    }
    degraded[ea[i].node] = !degraded[ea[i].node];
  }
  options.seed = 8;
  GilbertElliottDegradation c(options);
  const auto ec = drain(c);
  bool differs = ec.size() != ea.size();
  for (std::size_t i = 0; !differs && i < ec.size(); ++i) {
    differs = ec[i].time_s != ea[i].time_s || ec[i].node != ea[i].node;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same event stream";
}

TEST(NetFaultInjector, AppliesEventsThroughClusterAtScheduledTimes) {
  Cluster cluster(uniform_cluster(3));
  NetEvent scale;
  scale.time_s = 0.25;
  scale.action = NetEvent::Action::kRadioScale;
  scale.node = 1;
  scale.bw_scale = 0.5;
  NetEvent down;
  down.time_s = 0.5;
  down.action = NetEvent::Action::kLinkDown;
  down.node = 0;
  down.peer = 2;
  NetEvent up;
  up.time_s = 0.75;
  up.action = NetEvent::Action::kLinkUp;
  up.node = 0;
  up.peer = 2;
  ScriptedDegradation trace({scale, down, up});
  NetFaultInjector injector(cluster, trace);
  injector.start();
  std::vector<std::pair<double, std::uint64_t>> observed;  // (time, epoch)
  cluster.add_observer([&](const NodeEvent& event) {
    observed.emplace_back(event.time_s, event.epoch);
  });
  cluster.simulator().run();
  EXPECT_EQ(injector.applied(), 3u);
  EXPECT_EQ(cluster.membership_epoch(), 3u);
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_DOUBLE_EQ(observed[0].first, 0.25);
  EXPECT_DOUBLE_EQ(observed[1].first, 0.5);
  EXPECT_DOUBLE_EQ(observed[2].first, 0.75);
  EXPECT_DOUBLE_EQ(cluster.radio_bw_scale(1), 0.5);
  EXPECT_TRUE(cluster.link_up(0, 2));
}

// ---- engine + service: failure and replan on degraded links ----------------

/// Ships bytes to node 1 then computes there when the network says node 1
/// is healthily reachable; otherwise computes on the leader. Replans after
/// a link failure visibly route around the degradation. Optionally leads
/// with a compute task, keeping the transfer *pending* (undispatched) for
/// `lead_compute_s` — the window where only the engine's link sweep, not a
/// network-level abort, can fail the run.
class LinkAwareStrategy : public IStrategy {
 public:
  explicit LinkAwareStrategy(double lead_compute_s = 0.0)
      : lead_compute_s_(lead_compute_s) {}
  std::string name() const override { return "LinkAware"; }
  PlanResult plan(const PlanRequest& request) override {
    const ClusterSnapshot& snap = request.snapshot;
    seen_bw_scale.push_back(snap.network.bw_scale(1));
    Plan plan;
    plan.strategy = name();
    plan.leader = snap.leader;
    const bool remote_ok = snap.available.size() > 1 && snap.available[1] &&
                           snap.network.link_up(snap.leader, 1) &&
                           snap.network.bw_scale(1) > 0.99;
    int deps_base = -1;
    // The lead compute runs on a bystander node (2), so a replanned run is
    // never queued behind the failed run's leftover processor reservation —
    // the failure instant stays visible in the finish time.
    if (lead_compute_s_ > 0.0 && remote_ok) {
      PlanTask lead;
      lead.kind = PlanTask::Kind::kCompute;
      lead.node = 2;
      lead.proc = 0;
      lead.seconds = lead_compute_s_;
      lead.flops = 1e9;
      plan.tasks.push_back(lead);
      deps_base = 0;
    }
    if (remote_ok) {
      PlanTask send;
      send.kind = PlanTask::Kind::kTransfer;
      send.from = snap.leader;
      send.to = 1;
      send.bytes = 40'000'000;  // ~0.5 s on the healthy paper link
      if (deps_base >= 0) send.deps = {deps_base};
      plan.tasks.push_back(send);
      PlanTask compute;
      compute.kind = PlanTask::Kind::kCompute;
      compute.node = 1;
      compute.proc = 0;
      compute.seconds = 0.1;
      compute.flops = 1e9;
      compute.deps = {static_cast<int>(plan.tasks.size()) - 1};
      plan.tasks.push_back(compute);
      plan.nodes_used = 2;
    } else {
      PlanTask local;
      local.kind = PlanTask::Kind::kCompute;
      local.node = snap.leader;
      local.proc = 0;
      local.seconds = 0.2;
      local.flops = 1e9;
      if (deps_base >= 0) local.deps = {deps_base};
      plan.tasks.push_back(local);
      plan.nodes_used = 1;
    }
    return PlanResult{std::move(plan), false};
  }

  std::vector<double> seen_bw_scale;

 private:
  double lead_compute_s_;
};

TEST(EngineLinkFailure, MidTransferPartitionFailsRunAndRetryRoutesAround) {
  Cluster cluster(platform::paper_cluster());
  LinkAwareStrategy strategy;
  ServiceOptions options;
  options.max_retries = 1;
  InferenceService service(cluster, strategy, /*leader=*/0, options);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  NetEvent down;
  down.time_s = 0.3;  // mid-transfer (healthy transfer ends ~0.504)
  down.action = NetEvent::Action::kLinkDown;
  down.node = 0;
  down.peer = 1;
  ScriptedDegradation trace({down});
  NetFaultInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  // Failed at the partition instant, replanned local (0.2 s on the leader).
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.5);
  EXPECT_EQ(service.stats().retries, 1u);
  EXPECT_EQ(service.stats().completed, 1u);
  EXPECT_EQ(service.stats().failed, 0u);
  // The retry saw the degraded network and planned around it.
  ASSERT_EQ(strategy.seen_bw_scale.size(), 2u);
}

TEST(EngineLinkFailure, PendingTransferOnDeadLinkFailsBeforeDispatch) {
  Cluster cluster(platform::paper_cluster());
  // The transfer waits behind a 0.5 s leading compute; the link dies at
  // 0.3 while the transfer is still pending inside the engine.
  LinkAwareStrategy strategy(/*lead_compute_s=*/0.5);
  ServiceOptions options;
  options.max_retries = 1;
  InferenceService service(cluster, strategy, 0, options);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  NetEvent down;
  down.time_s = 0.3;
  down.action = NetEvent::Action::kLinkDown;
  down.node = 0;
  down.peer = 1;
  ScriptedDegradation trace({down});
  NetFaultInjector injector(cluster, trace);
  injector.start();
  const auto records = service.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  // The pending-transfer sweep failed the run at the event instant (0.3),
  // not at the transfer's dispatch (0.5): the local retry finishes at
  // 0.3 + 0.2. A dispatch-time-only check would land at 0.7.
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.5);
  EXPECT_EQ(service.stats().retries, 1u);
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST(EngineLinkFailure, TransferTimeoutDetectsSilentDegradationAndReplans) {
  ModelSet models;
  const auto run_once = [&](double timeout_factor) {
    Cluster cluster(platform::paper_cluster());
    LinkAwareStrategy strategy;
    ServiceOptions options;
    options.max_retries = 1;
    options.transfer_timeout_factor = timeout_factor;
    InferenceService service(cluster, strategy, 0, options);
    service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
    // Node 1's radio silently collapses to 1% bandwidth right after the
    // transfer starts — no partition, so only a watchdog can notice.
    NetEvent collapse;
    collapse.time_s = 0.1;
    collapse.action = NetEvent::Action::kRadioScale;
    collapse.node = 1;
    collapse.bw_scale = 0.01;
    ScriptedDegradation trace({collapse});
    NetFaultInjector injector(cluster, trace);
    injector.start();
    const auto records = service.run();
    return std::make_pair(records, service.stats());
  };
  const auto [with_watchdog, watchdog_stats] = run_once(2.0);
  const auto [without, without_stats] = run_once(0.0);
  ASSERT_EQ(with_watchdog.size(), 1u);
  ASSERT_EQ(without.size(), 1u);
  EXPECT_EQ(with_watchdog[0].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(without[0].outcome, RequestOutcome::kCompleted);
  // The watchdog fires at 2x the planned transfer time, the retry runs
  // locally; the unguarded service crawls through the degraded link.
  EXPECT_EQ(watchdog_stats.retries, 1u);
  EXPECT_EQ(without_stats.retries, 0u);
  EXPECT_LT(with_watchdog[0].finish_s, without[0].finish_s / 2.0);
  EXPECT_THROW(
      [] {
        ServiceOptions bad;
        bad.transfer_timeout_factor = 0.5;  // would kill healthy transfers
        Cluster c(uniform_cluster(2));
        LinkAwareStrategy s;
        InferenceService doomed(c, s, 0, bad);
      }(),
      std::invalid_argument);
}

TEST(EngineLinkFailure, StaleNetworkPlanningStaysBlindToDegradation) {
  ModelSet models;
  const auto run_once = [&](bool stale) {
    Cluster cluster(platform::paper_cluster());
    LinkAwareStrategy strategy;
    ServiceOptions options;
    options.stale_network_planning = stale;
    InferenceService service(cluster, strategy, 0, options);
    // Radio collapses before the request arrives.
    NetEvent collapse;
    collapse.time_s = 0.1;
    collapse.action = NetEvent::Action::kRadioScale;
    collapse.node = 1;
    collapse.bw_scale = 0.01;
    ScriptedDegradation trace({collapse});
    NetFaultInjector injector(cluster, trace);
    injector.start();
    service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.5});
    const auto records = service.run();
    return std::make_pair(records, strategy.seen_bw_scale);
  };
  const auto [aware_records, aware_saw] = run_once(false);
  const auto [stale_records, stale_saw] = run_once(true);
  // The aware strategy sees the degraded scale and plans locally; the
  // stale one plans against the construction-time spec and ships bytes
  // into the collapsed link.
  ASSERT_FALSE(aware_saw.empty());
  ASSERT_FALSE(stale_saw.empty());
  EXPECT_DOUBLE_EQ(aware_saw[0], 0.01);
  EXPECT_DOUBLE_EQ(stale_saw[0], 1.0);
  ASSERT_EQ(aware_records.size(), 1u);
  ASSERT_EQ(stale_records.size(), 1u);
  EXPECT_LT(aware_records[0].finish_s, stale_records[0].finish_s / 2.0);
}

// ---- granular invalidation (plan cache + cost models) ----------------------

TEST(GranularInvalidation, RadioScaleRepricesWithoutCostModelRebuild) {
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy hidp;
  InferenceService service(cluster, hidp, 1);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kVgg19), 0.0});
  service.run();
  EXPECT_EQ(hidp.cost_model_rebuilds(), 0u);
  EXPECT_EQ(hidp.network_repricings(), 0u);

  // Network-only change: the next plan re-points transfer pricing but
  // keeps every compute memo.
  cluster.set_radio_scale(0, 0.5, 1.0);
  service.submit(RequestSpec{1, &models.graph(ModelId::kVgg19), cluster.simulator().now() + 0.1});
  service.run();
  EXPECT_EQ(hidp.cost_model_rebuilds(), 0u);
  EXPECT_GE(hidp.network_repricings(), 1u);
  const std::uint64_t repricings_after_scale = hidp.network_repricings();

  // Compute change: full rebuild, no extra repricing.
  cluster.set_dvfs_scale(0, 0.5);
  service.submit(RequestSpec{2, &models.graph(ModelId::kVgg19), cluster.simulator().now() + 0.1});
  service.run();
  EXPECT_GE(hidp.cost_model_rebuilds(), 1u);
  EXPECT_EQ(hidp.network_repricings(), repricings_after_scale);

  // Availability churn is part of the cache key: neither counter moves and
  // the plan cache keeps its epoch.
  const std::uint64_t rebuilds = hidp.cost_model_rebuilds();
  const std::uint64_t epoch = hidp.plan_cache_epoch();
  cluster.set_node_available(3, false);
  cluster.set_node_available(3, true);
  EXPECT_EQ(hidp.cost_model_rebuilds(), rebuilds);
  EXPECT_EQ(hidp.network_repricings(), repricings_after_scale);
  EXPECT_EQ(hidp.plan_cache_epoch(), epoch);
}

TEST(GranularInvalidation, LinkEventFlushesPlanCacheEagerly) {
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy hidp;
  InferenceService service(cluster, hidp, 1);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kVgg19), 0.0});
  service.run();
  const std::uint64_t epoch = hidp.plan_cache_epoch();
  cluster.set_link_up(0, 3, false);
  EXPECT_GT(hidp.plan_cache_epoch(), epoch);
}

TEST(GranularInvalidation, ProbeNoiseNeverLeaksIntoCacheKeys) {
  // Regression: the prober's noisy beta measurements must not perturb the
  // plan-cache key — two identical steady-state requests with heavy probe
  // noise still produce a cache hit on the second.
  Cluster cluster(platform::paper_cluster());
  core::HidpStrategy::Options options;
  options.probe_noise_fraction = 0.3;
  core::HidpStrategy hidp(options);
  InferenceService service(cluster, hidp, 1);
  ModelSet models;
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  service.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 5.0});
  const auto records = service.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_GE(hidp.plan_cache_stats().hits, 1u);
}

// ---- degradation-aware probing ---------------------------------------------

TEST(ProberDegradation, DegradedLinkReportedAvailableButSlow) {
  net::NetworkSpec spec(platform::paper_cluster());
  spec.set_radio_scale(1, 0.5, 1.0);
  net::ClusterProber prober(spec, 1024, /*noise_fraction=*/0.0);
  util::Rng rng(1);
  const auto report = prober.probe(0, std::vector<bool>(spec.size(), true), rng);
  ASSERT_EQ(report.degraded.size(), spec.size());
  EXPECT_TRUE(report.available[1]);
  EXPECT_TRUE(report.degraded[1]);
  EXPECT_FALSE(report.degraded[2]);
  EXPECT_EQ(report.degraded_count(), 1u);
  // Measured beta reflects the degraded link, not the base rate.
  EXPECT_LT(report.beta_bps[1], 0.9 * std::min(spec.base_radio_bw_bps(0),
                                               spec.base_radio_bw_bps(1)));
  EXPECT_GT(report.beta_bps[1], 0.0);
}

TEST(ProberDegradation, PartitionedNodeReportedUnavailable) {
  net::NetworkSpec spec(platform::paper_cluster());
  spec.set_link_up(0, 2, false);
  net::ClusterProber prober(spec, 1024, 0.0);
  util::Rng rng(1);
  const auto report = prober.probe(0, std::vector<bool>(spec.size(), true), rng);
  EXPECT_FALSE(report.available[2]);
  EXPECT_DOUBLE_EQ(report.beta_bps[2], 0.0);
  EXPECT_FALSE(report.degraded[2]);
  EXPECT_TRUE(report.available[1]);
  EXPECT_EQ(report.available_count(), spec.size() - 1);
}

// ---- fleet partition failover ----------------------------------------------

class LeaderLocalStrategy : public IStrategy {
 public:
  explicit LeaderLocalStrategy(double seconds) : seconds_(seconds) {}
  std::string name() const override { return "LeaderLocal"; }
  PlanResult plan(const PlanRequest& request) override {
    Plan plan;
    plan.strategy = name();
    plan.leader = request.snapshot.leader;
    PlanTask task;
    task.kind = PlanTask::Kind::kCompute;
    task.node = request.snapshot.leader;
    task.proc = 0;
    task.seconds = seconds_;
    task.flops = 1e9;
    plan.tasks.push_back(task);
    plan.nodes_used = 1;
    return PlanResult{std::move(plan), false};
  }

 private:
  double seconds_;
};

class AllToZeroRouting : public RoutingPolicy {
 public:
  std::string_view name() const override { return "all-to-zero"; }
  std::size_t route(const RequestSpec&, const ServiceFleet&) override { return 0; }
  bool routes_on_arrival() const override { return false; }
};

TEST(FleetPartition, PartitionedShardEvacuatesToSibling) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(uniform_cluster(4));
  LeaderLocalStrategy a(0.2), b(0.2);
  AllToZeroRouting routing;
  FleetShard shard_a{&a, {0, 1}, FleetShard::kAutoLeader, {}};
  FleetShard shard_b{&b, {2, 3}, FleetShard::kAutoLeader, {}};
  shard_a.service.max_in_flight = 1;
  shard_b.service.max_in_flight = 1;
  FleetOptions options;
  options.failover.enabled = true;
  options.failover.min_live_nodes = 2;  // the partition drops shard 0 to 1
  ServiceFleet fleet(cluster, {shard_a, shard_b}, routing, options);
  const auto stream = periodic_stream(model, 6, 0.05);
  for (const auto& spec : stream) fleet.submit(spec);
  // No node dies — shard 0's worker is partitioned from its leader.
  NetEvent down;
  down.time_s = 0.3;
  down.action = NetEvent::Action::kLinkDown;
  down.node = 0;
  down.peer = 1;
  ScriptedDegradation trace({down});
  NetFaultInjector injector(cluster, trace);
  injector.start();
  const auto records = fleet.run();
  ASSERT_EQ(records.size(), 6u);
  for (const auto& record : records) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted) << "request " << record.id;
  }
  EXPECT_GT(fleet.evacuations(), 0u);
}

// ---- zero-degradation bit-identity -----------------------------------------

TEST(NetFaultDeterminism, EmptyInjectorLeavesRunsBitIdentical) {
  ModelSet models;
  const auto run_once = [&](bool with_injector) {
    Cluster cluster(platform::paper_cluster());
    core::HidpStrategy hidp;
    ServiceOptions options;
    options.max_in_flight = 2;
    InferenceService service(cluster, hidp, 1, options);
    PoissonArrivals::Options poisson;
    poisson.rate_hz = 30.0;
    poisson.count = 25;
    poisson.seed = 9;
    PoissonArrivals arrivals(models, {ModelId::kEfficientNetB0, ModelId::kResNet152},
                             poisson);
    service.attach(&arrivals);
    ScriptedDegradation empty({});
    NetFaultInjector injector(cluster, empty);
    if (with_injector) injector.start();
    return service.run();
  };
  const auto baseline = run_once(false);
  const auto injected = run_once(true);
  ASSERT_EQ(baseline.size(), 25u);
  ASSERT_EQ(baseline.size(), injected.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].id, injected[i].id);
    EXPECT_EQ(baseline[i].outcome, injected[i].outcome);
    EXPECT_DOUBLE_EQ(baseline[i].dispatch_s, injected[i].dispatch_s);
    EXPECT_DOUBLE_EQ(baseline[i].finish_s, injected[i].finish_s);
    EXPECT_DOUBLE_EQ(baseline[i].flops, injected[i].flops);
  }
}

}  // namespace
}  // namespace hidp::runtime
