// Strategy-level tests: HiDP and the three baselines produce valid plans
// with the behavioural signatures the paper attributes to each.
#include <gtest/gtest.h>

#include "baselines/disnet.hpp"
#include "baselines/modnn.hpp"
#include "baselines/omniboost.hpp"
#include "core/hidp_strategy.hpp"
#include "runtime/workload.hpp"

namespace hidp {
namespace {

using runtime::ClusterSnapshot;
using runtime::Plan;

ClusterSnapshot snapshot(const std::vector<platform::NodeModel>& nodes, std::size_t leader,
                         int queue = 0) {
  ClusterSnapshot snap;
  snap.nodes = &nodes;
  snap.network = net::NetworkSpec(nodes);
  snap.available.assign(nodes.size(), true);
  snap.leader = leader;
  snap.queue_depth = queue;
  return snap;
}

/// Plans one request through the redesigned PlanRequest surface.
runtime::PlanResult plan_request(runtime::IStrategy& strategy, const dnn::DnnGraph& model,
                                 ClusterSnapshot snap) {
  runtime::PlanRequest request;
  request.model = &model;
  request.snapshot = std::move(snap);
  return strategy.plan(request);
}

Plan plan_once(runtime::IStrategy& strategy, const dnn::DnnGraph& model, ClusterSnapshot snap) {
  return plan_request(strategy, model, std::move(snap)).plan;
}

class StrategyContract : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<runtime::IStrategy> make() const {
    switch (GetParam()) {
      case 0: return std::make_unique<core::HidpStrategy>();
      case 1: return std::make_unique<baselines::DisnetStrategy>();
      case 2: return std::make_unique<baselines::OmniboostStrategy>();
      default: return std::make_unique<baselines::ModnnStrategy>();
    }
  }
};

TEST_P(StrategyContract, ValidPlanForEveryModelAndLeader) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  auto strategy = make();
  for (const auto id : models.ids()) {
    for (const std::size_t leader : {0u, 1u, 4u}) {
      const Plan plan = plan_once(*strategy, models.graph(id), snapshot(nodes, leader));
      ASSERT_FALSE(plan.empty())
          << strategy->name() << " " << dnn::zoo::model_name(id) << " leader " << leader;
      EXPECT_NO_THROW(runtime::validate_plan(plan, nodes));
      EXPECT_EQ(plan.leader, leader);
      EXPECT_GT(plan.phases.total(), 0.0);
      EXPECT_GE(plan.nodes_used, 1);
    }
  }
}

TEST_P(StrategyContract, SurvivesPartialAvailability) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  auto strategy = make();
  auto snap = snapshot(nodes, 0);
  snap.available = {true, false, false, true, false};
  const Plan plan = plan_once(*strategy, models.graph(dnn::zoo::ModelId::kResNet152), snap);
  ASSERT_FALSE(plan.empty());
  for (const auto& task : plan.tasks) {
    if (task.kind == runtime::PlanTask::Kind::kCompute) {
      EXPECT_TRUE(task.node == 0 || task.node == 3) << strategy->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyContract, ::testing::Range(0, 4),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0: return std::string("HiDP");
                             case 1: return std::string("DisNet");
                             case 2: return std::string("OmniBoost");
                             default: return std::string("MoDNN");
                           }
                         });

TEST(HidpStrategy, UsesHierarchicalLocalPartitioning) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  core::HidpStrategy hidp;
  const Plan plan = plan_once(hidp, models.graph(dnn::zoo::ModelId::kEfficientNetB0),
                              snapshot(nodes, 1));
  // HiDP's local tier splits blocks across processors: expect at least one
  // node contributing >= 2 parallel compute tasks.
  std::map<std::size_t, std::set<std::size_t>> procs_per_node;
  for (const auto& t : plan.tasks) {
    if (t.kind == runtime::PlanTask::Kind::kCompute) procs_per_node[t.node].insert(t.proc);
  }
  bool multi_proc = false;
  for (const auto& [node, procs] : procs_per_node) multi_proc |= procs.size() >= 2;
  EXPECT_TRUE(multi_proc);
}

TEST(HidpStrategy, FsmTraceFollowsPaperWorkflow) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  core::HidpStrategy hidp;
  plan_once(hidp, models.graph(dnn::zoo::ModelId::kInceptionV3), snapshot(nodes, 0));
  const auto& fsm = hidp.last_fsm();
  ASSERT_GE(fsm.trace().size(), 6u);
  EXPECT_EQ(fsm.trace().front().to, core::FsmState::kExplore);
  EXPECT_EQ(fsm.trace().back().to, core::FsmState::kAnalyze);
  EXPECT_EQ(fsm.state(), core::FsmState::kAnalyze);
}

TEST(HidpStrategy, ChargesPaperPlanningOverhead) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  core::HidpStrategy hidp;
  const Plan plan = plan_once(hidp, models.graph(dnn::zoo::ModelId::kResNet152), snapshot(nodes, 0));
  // Explore + Map default to 15 ms (paper §IV-A); Analyze adds probe RTT.
  EXPECT_NEAR(plan.phases.explore_s + plan.phases.map_s, 0.015, 1e-12);
  EXPECT_GT(plan.phases.analyze_s, 0.0);
}

TEST(HidpStrategy, AdaptsModeToModel) {
  // Across the four models and two leaders, HiDP should not be locked into
  // a single global mode (the paper stresses dynamic data/model selection).
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  core::HidpStrategy hidp;
  std::set<partition::PartitionMode> modes;
  for (const auto id : models.ids()) {
    for (const std::size_t leader : {0u, 3u, 4u}) {
      const Plan plan = plan_once(hidp, models.graph(id), snapshot(nodes, leader, 2));
      modes.insert(plan.global_mode);
    }
  }
  EXPECT_GE(modes.size(), 1u);
  EXPECT_FALSE(modes.count(partition::PartitionMode::kNone));
}

TEST(ModnnStrategy, AlwaysDataPartitions) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::ModnnStrategy modnn;
  for (const auto id : models.ids()) {
    const Plan plan = plan_once(modnn, models.graph(id), snapshot(nodes, 0));
    EXPECT_EQ(plan.global_mode, partition::PartitionMode::kData)
        << dnn::zoo::model_name(id);
  }
}

TEST(ModnnStrategy, DefaultLocalPlacementOnly) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::ModnnStrategy modnn;
  const Plan plan = plan_once(modnn, models.graph(dnn::zoo::ModelId::kVgg19), snapshot(nodes, 0));
  // No local tier: each participating node runs its slice on ONE processor.
  std::map<std::size_t, std::set<std::size_t>> procs_per_node;
  for (const auto& t : plan.tasks) {
    if (t.kind == runtime::PlanTask::Kind::kCompute) procs_per_node[t.node].insert(t.proc);
  }
  for (const auto& [node, procs] : procs_per_node) {
    EXPECT_EQ(procs.size(), 1u) << "node " << node;
  }
}

TEST(DisnetStrategy, HybridButGlobalOnly) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::DisnetStrategy disnet;
  std::set<partition::PartitionMode> modes;
  for (const auto id : models.ids()) {
    const Plan plan = plan_once(disnet, models.graph(id), snapshot(nodes, 4));
    modes.insert(plan.global_mode);
    std::map<std::size_t, std::set<std::size_t>> procs_per_node;
    for (const auto& t : plan.tasks) {
      if (t.kind == runtime::PlanTask::Kind::kCompute) procs_per_node[t.node].insert(t.proc);
    }
    for (const auto& [node, procs] : procs_per_node) EXPECT_EQ(procs.size(), 1u);
  }
  EXPECT_FALSE(modes.count(partition::PartitionMode::kNone));
}

TEST(OmniboostStrategy, PipelinesAcrossProcessors) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::OmniboostStrategy omni;
  const Plan plan = plan_once(omni, models.graph(dnn::zoo::ModelId::kResNet152),
                              snapshot(nodes, 0, /*queue=*/2));
  EXPECT_EQ(plan.global_mode, partition::PartitionMode::kModel);
  // Sequential pipeline: every compute task depends (transitively) on the
  // previous one — no parallel fan-out.
  int previous = -1;
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    if (plan.tasks[i].kind != runtime::PlanTask::Kind::kCompute) continue;
    if (previous >= 0) EXPECT_FALSE(plan.tasks[i].deps.empty());
    previous = static_cast<int>(i);
  }
}

TEST(OmniboostStrategy, DeterministicAcrossInstances) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::OmniboostStrategy a, b;
  const Plan pa = plan_once(a, models.graph(dnn::zoo::ModelId::kVgg19), snapshot(nodes, 0));
  const Plan pb = plan_once(b, models.graph(dnn::zoo::ModelId::kVgg19), snapshot(nodes, 0));
  ASSERT_EQ(pa.tasks.size(), pb.tasks.size());
  for (std::size_t i = 0; i < pa.tasks.size(); ++i) {
    EXPECT_EQ(pa.tasks[i].node, pb.tasks[i].node);
    EXPECT_EQ(pa.tasks[i].proc, pb.tasks[i].proc);
  }
}

TEST(BaselinePlanCache, RepeatedSituationHits) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::ModnnStrategy modnn;
  baselines::DisnetStrategy disnet;
  baselines::OmniboostStrategy omni;
  const auto& graph = models.graph(dnn::zoo::ModelId::kResNet152);
  for (auto* strategy :
       std::initializer_list<runtime::IStrategy*>{&modnn, &disnet, &omni}) {
    const Plan first = plan_once(*strategy, graph, snapshot(nodes, 0));
    const Plan second = plan_once(*strategy, graph, snapshot(nodes, 0));
    ASSERT_FALSE(first.empty()) << strategy->name();
    ASSERT_EQ(first.tasks.size(), second.tasks.size()) << strategy->name();
    // The hit charges lookup cost, not the strategy's planning latency.
    EXPECT_LT(second.phases.total(), first.phases.total()) << strategy->name();
  }
  EXPECT_EQ(modnn.plan_cache_stats().hits, 1u);
  EXPECT_EQ(modnn.plan_cache_stats().misses, 1u);
  EXPECT_EQ(disnet.plan_cache_stats().hits, 1u);
  EXPECT_EQ(omni.plan_cache_stats().hits, 1u);
}

TEST(BaselinePlanCache, QueueDepthKeyedOnlyWhereRead) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  const auto& graph = models.graph(dnn::zoo::ModelId::kResNet152);
  // MoDNN never consults queue depth: depth churn must stay a cache hit.
  baselines::ModnnStrategy modnn;
  (void)plan_once(modnn, graph, snapshot(nodes, 0, /*queue=*/0));
  (void)plan_once(modnn, graph, snapshot(nodes, 0, /*queue=*/3));
  EXPECT_EQ(modnn.plan_cache_stats().hits, 1u);
  // OmniBoost switches objective on queue_depth > 0: exactly two regimes.
  baselines::OmniboostStrategy omni;
  (void)plan_once(omni, graph, snapshot(nodes, 0, /*queue=*/0));
  (void)plan_once(omni, graph, snapshot(nodes, 0, /*queue=*/2));  // miss: q>0 regime
  (void)plan_once(omni, graph, snapshot(nodes, 0, /*queue=*/7));  // hit: same regime
  EXPECT_EQ(omni.plan_cache_stats().misses, 2u);
  EXPECT_EQ(omni.plan_cache_stats().hits, 1u);
}

TEST(BaselinePlanCache, DistinctSituationsMiss) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::ModnnStrategy modnn;
  const auto& graph = models.graph(dnn::zoo::ModelId::kVgg19);
  (void)plan_once(modnn, graph, snapshot(nodes, 0));
  (void)plan_once(modnn, graph, snapshot(nodes, 1));  // different leader
  auto degraded = snapshot(nodes, 0);
  degraded.available = {true, true, false, true, true};
  (void)plan_once(modnn, graph, degraded);  // different availability
  EXPECT_EQ(modnn.plan_cache_stats().hits, 0u);
  EXPECT_EQ(modnn.plan_cache_stats().misses, 3u);
}

TEST(BaselinePlanCache, EmptyAvailabilityDoesNotAliasAllDown) {
  // An empty availability vector means "everyone available" (worker
  // ordering skips nothing), while an explicit all-false means leader-only;
  // the cache key must distinguish them or the leader-only request replays
  // the all-node plan onto down nodes.
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::ModnnStrategy modnn;
  const auto& graph = models.graph(dnn::zoo::ModelId::kResNet152);
  auto everyone = snapshot(nodes, 0);
  everyone.available.clear();
  (void)plan_once(modnn, graph, everyone);
  auto leader_only = snapshot(nodes, 0);
  leader_only.available.assign(nodes.size(), false);
  leader_only.available[0] = true;
  const Plan plan = plan_once(modnn, graph, leader_only);
  EXPECT_EQ(modnn.plan_cache_stats().hits, 0u);
  for (const auto& task : plan.tasks) {
    if (task.kind == runtime::PlanTask::Kind::kCompute) EXPECT_EQ(task.node, 0u);
  }
}

TEST(BaselinePlanCache, ClusterChangeInvalidates) {
  auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::DisnetStrategy disnet;
  const auto& graph = models.graph(dnn::zoo::ModelId::kResNet152);
  (void)plan_once(disnet, graph, snapshot(nodes, 0));
  (void)plan_once(disnet, graph, snapshot(nodes, 0));
  EXPECT_EQ(disnet.plan_cache_stats().hits, 1u);

  // Shrinking the cluster must drop the cached plans (and the cost models
  // priced against the old node vector/network).
  const auto smaller = platform::paper_cluster(3);
  const Plan plan = plan_once(disnet, graph, snapshot(smaller, 0));
  ASSERT_FALSE(plan.empty());
  EXPECT_NO_THROW(runtime::validate_plan(plan, smaller));
  EXPECT_EQ(disnet.plan_cache_stats().invalidations, 1u);
  for (const auto& task : plan.tasks) {
    if (task.kind == runtime::PlanTask::Kind::kCompute) EXPECT_LT(task.node, smaller.size());
  }
}

TEST(BaselinePlanCache, DisabledCacheNeverHits) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  baselines::ModnnStrategy::Options options;
  options.plan_cache.enabled = false;
  baselines::ModnnStrategy modnn(options);
  const auto& graph = models.graph(dnn::zoo::ModelId::kResNet152);
  const Plan first = plan_once(modnn, graph, snapshot(nodes, 0));
  const Plan second = plan_once(modnn, graph, snapshot(nodes, 0));
  EXPECT_EQ(modnn.plan_cache_stats().hits, 0u);
  EXPECT_EQ(modnn.plan_cache_stats().misses, 0u);
  EXPECT_DOUBLE_EQ(first.phases.total(), second.phases.total());
}

TEST(SharedPlanPath, AllFourStrategiesCacheThroughPlanRequest) {
  // The redesigned surface: every strategy derives from CachingStrategyBase
  // and plans through the one PlanRequest -> CrossRequestPlanCache code
  // path. A repeated situation must be a hit for each of the four, visible
  // both in PlanResult::cache_hit and in the shared stats counters.
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  const auto& graph = models.graph(dnn::zoo::ModelId::kInceptionV3);
  core::HidpStrategy::Options hidp_options;
  hidp_options.probe_availability = false;  // deterministic cache key
  core::HidpStrategy hidp(hidp_options);
  baselines::DisnetStrategy disnet;
  baselines::OmniboostStrategy omni;
  baselines::ModnnStrategy modnn;
  for (auto* strategy :
       std::initializer_list<runtime::IStrategy*>{&hidp, &disnet, &omni, &modnn}) {
    auto* cached = dynamic_cast<core::CachingStrategyBase*>(strategy);
    ASSERT_NE(cached, nullptr) << strategy->name();
    const runtime::PlanResult first = plan_request(*strategy, graph, snapshot(nodes, 1));
    const runtime::PlanResult second = plan_request(*strategy, graph, snapshot(nodes, 1));
    EXPECT_FALSE(first.cache_hit) << strategy->name();
    EXPECT_TRUE(second.cache_hit) << strategy->name();
    EXPECT_EQ(second.plan.tasks.size(), first.plan.tasks.size()) << strategy->name();
    EXPECT_EQ(cached->plan_cache_stats().misses, 1u) << strategy->name();
    EXPECT_EQ(cached->plan_cache_stats().hits, 1u) << strategy->name();
    // A deeper-queue regime fragments the key only as far as the strategy
    // actually reads the queue depth.
    const runtime::PlanResult queued = plan_request(*strategy, graph, snapshot(nodes, 1, 7));
    const bool queue_blind = cached->plan_cache_stats().hits == 2u;
    EXPECT_EQ(queue_blind, strategy == &modnn || strategy == &disnet) << strategy->name();
    (void)queued;
  }
}

/// Minimal CachingStrategyBase subclass: counts searches, plans a single
/// leader-local task. Lets the cache-key tests run on clusters far larger
/// than the planners are tuned for.
class CountingStrategy : public core::CachingStrategyBase {
 public:
  CountingStrategy() : CachingStrategyBase(CachePolicy{}) {}
  std::string name() const override { return "Counting"; }
  int fresh_calls = 0;

 protected:
  void plan_fresh(const runtime::PlanRequest& request, const std::vector<bool>& available,
                  core::CachedPlanEntry& entry) override {
    (void)available;
    ++fresh_calls;
    Plan plan;
    plan.strategy = name();
    plan.leader = request.snapshot.leader;
    runtime::PlanTask task;
    task.kind = runtime::PlanTask::Kind::kCompute;
    task.node = request.snapshot.leader;
    task.proc = 0;
    task.seconds = 0.01;
    task.flops = 1e9;
    plan.tasks.push_back(task);
    plan.nodes_used = 1;
    entry.plan = std::move(plan);
  }
  void on_cluster_change(core::ClusterChange) override {}
};

TEST(PlanCacheWideClusters, BeyondSixtyFourNodesStillCaches) {
  // Regression for the >64-node cliff: the single-word availability mask
  // used to make large fleets silently uncacheable — every request
  // replanned with no signal. The key now keeps exact multi-word
  // availability for big clusters.
  std::vector<platform::NodeModel> nodes;
  for (int i = 0; i < 80; ++i) nodes.push_back(platform::make_device("Raspberry Pi 4"));
  runtime::ModelSet models;
  const auto& graph = models.graph(dnn::zoo::ModelId::kEfficientNetB0);
  CountingStrategy strategy;

  const auto first = plan_request(strategy, graph, snapshot(nodes, 0));
  const auto second = plan_request(strategy, graph, snapshot(nodes, 0));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(strategy.fresh_calls, 1);
  EXPECT_EQ(strategy.plan_cache_stats().hits, 1u);

  // Availability flips beyond bit 63 must key distinct situations.
  auto degraded = snapshot(nodes, 0);
  degraded.available[70] = false;
  const auto third = plan_request(strategy, graph, degraded);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(strategy.fresh_calls, 2);

  // ... and each situation replays from its own entry afterwards.
  auto degraded_again = snapshot(nodes, 0);
  degraded_again.available[70] = false;
  EXPECT_TRUE(plan_request(strategy, graph, degraded_again).cache_hit);
  EXPECT_TRUE(plan_request(strategy, graph, snapshot(nodes, 0)).cache_hit);
  EXPECT_EQ(strategy.fresh_calls, 2);
}

TEST(PlanCacheWideClusters, EpochAdvancesOnClusterChange) {
  std::vector<platform::NodeModel> nodes;
  for (int i = 0; i < 66; ++i) nodes.push_back(platform::make_device("Jetson Nano"));
  runtime::ModelSet models;
  const auto& graph = models.graph(dnn::zoo::ModelId::kEfficientNetB0);
  CountingStrategy strategy;
  (void)plan_request(strategy, graph, snapshot(nodes, 0));
  const auto epoch = strategy.plan_cache_epoch();
  const auto smaller = platform::paper_cluster(3);
  (void)plan_request(strategy, graph, snapshot(smaller, 0));
  EXPECT_GT(strategy.plan_cache_epoch(), epoch);
}

TEST(Strategies, HidpPredictsLowestLatency) {
  // Contention-free critical paths: HiDP's plan must beat every baseline's
  // for each model (leader = TX2, the paper's Fig. 1 board).
  const auto nodes = platform::paper_cluster();
  const net::NetworkSpec network(nodes);
  runtime::ModelSet models;
  core::HidpStrategy hidp;
  baselines::DisnetStrategy disnet;
  baselines::OmniboostStrategy omni;
  baselines::ModnnStrategy modnn;
  for (const auto id : models.ids()) {
    const auto& graph = models.graph(id);
    const double t_hidp =
        runtime::critical_path_s(plan_once(hidp, graph, snapshot(nodes, 1)), nodes, network);
    for (runtime::IStrategy* baseline :
         std::initializer_list<runtime::IStrategy*>{&disnet, &omni, &modnn}) {
      const double t_base =
          runtime::critical_path_s(plan_once(*baseline, graph, snapshot(nodes, 1)), nodes, network);
      EXPECT_LT(t_hidp, t_base) << dnn::zoo::model_name(id) << " vs " << baseline->name();
    }
  }
}

}  // namespace
}  // namespace hidp
