// Data partitioner: band sizing, exact slice FLOPs, halo overlap, head.
#include <gtest/gtest.h>

#include <algorithm>

#include "dnn/zoo/zoo.hpp"
#include "partition/data_partitioner.hpp"
#include "platform/device_db.hpp"

namespace hidp::partition {
namespace {

struct Fixture {
  dnn::DnnGraph graph = dnn::zoo::build_vgg19();
  std::vector<platform::NodeModel> nodes = platform::paper_cluster();
  net::NetworkSpec network{nodes};
  ClusterCostModel cost{graph, nodes, network, NodeExecutionPolicy::kHierarchicalLocal};
};

TEST(ProportionalBands, ExactCoverAndProportionality) {
  const auto bands = proportional_row_bands(100, {3.0, 1.0});
  ASSERT_EQ(bands.size(), 2u);
  EXPECT_EQ(bands[0].begin, 0);
  EXPECT_EQ(bands[0].end, 75);
  EXPECT_EQ(bands[1].end, 100);
}

TEST(ProportionalBands, LargestRemainderExactTotal) {
  const auto bands = proportional_row_bands(10, {1.0, 1.0, 1.0});
  int total = 0;
  for (const auto& b : bands) total += b.size();
  EXPECT_EQ(total, 10);
  EXPECT_EQ(bands.back().end, 10);
}

TEST(ProportionalBands, ZeroWeightGetsNothingOrRemainder) {
  const auto bands = proportional_row_bands(10, {1.0, 0.0});
  EXPECT_EQ(bands[0].size() + bands[1].size(), 10);
  EXPECT_GE(bands[0].size(), 9);
}

TEST(ProportionalBands, DegenerateInputs) {
  EXPECT_TRUE(proportional_row_bands(0, {1.0}).front().empty());
  EXPECT_TRUE(proportional_row_bands(10, {}).empty());
}

TEST(DataPartitioner, SlicesCoverTargetRows) {
  Fixture f;
  const auto result = plan_data_partition(f.cost, {0, 1, 2}, 0);
  ASSERT_TRUE(result.valid);
  const int split = result.split_layer;
  EXPECT_EQ(split, dnn::data_partition_point(f.graph));
  int covered = 0;
  for (const auto& slice : result.slices) covered += slice.target_rows.size();
  EXPECT_EQ(covered, f.graph.layer(split - 1).output.height);
}

TEST(DataPartitioner, SliceWorkExceedsProportionalShare) {
  // Halo recomputation means the sum of slice FLOPs exceeds the prefix
  // FLOPs. At the deepest split the receptive field is large, so the
  // overlap is substantial but bounded.
  Fixture f;
  const auto result = plan_data_partition(f.cost, {0, 1}, 0);
  ASSERT_TRUE(result.valid);
  const double prefix_flops = f.graph.range_flops(0, result.split_layer);
  double total = 0.0;
  for (const auto& slice : result.slices) total += slice.work.total();
  EXPECT_GT(total, prefix_flops);
  EXPECT_LT(total, prefix_flops * 2.0);
}

TEST(DataPartitioner, SplitSweepReducesLatency) {
  // The DSE's split sweep must never be worse than the fixed deepest split
  // and should find a strictly cheaper shallower split for VGG (where the
  // deep receptive field makes the deepest split expensive).
  Fixture f;
  const auto fixed = plan_data_partition(f.cost, {0, 1, 2}, 0);
  const auto swept = plan_best_data_partition(f.cost, {0, 1, 2}, 0);
  ASSERT_TRUE(fixed.valid && swept.valid);
  EXPECT_LE(swept.latency_s, fixed.latency_s + 1e-12);
  EXPECT_LT(swept.split_layer, fixed.split_layer);
}

TEST(DataPartitioner, SplitCandidatesAreCleanSpatialCuts) {
  Fixture f;
  const auto candidates = data_split_candidates(f.graph, 12);
  ASSERT_FALSE(candidates.empty());
  EXPECT_LE(candidates.size(), 12u);
  EXPECT_EQ(candidates.back(), dnn::data_partition_point(f.graph));
  for (int c : candidates) {
    EXPECT_GT(f.graph.layer(c - 1).output.height, 1);
    EXPECT_LE(c, f.graph.spatial_prefix_end());
  }
}

TEST(DataPartitioner, SplitCandidateThinningSweep) {
  // Regression for the thinning NaN/dup bug: max_candidates == 1 used to
  // divide by zero (step = inf, 0 * inf = NaN cast to an index — UB), and
  // rounding plus the forced last element could select a candidate twice.
  Fixture f;
  const auto full = data_split_candidates(f.graph, 0);  // 0 = unthinned
  ASSERT_GE(full.size(), 2u);
  for (int max = 1; max <= static_cast<int>(full.size()) + 2; ++max) {
    const auto thinned = data_split_candidates(f.graph, max);
    ASSERT_FALSE(thinned.empty()) << "max=" << max;
    EXPECT_LE(static_cast<int>(thinned.size()), max) << "max=" << max;
    EXPECT_EQ(thinned.back(), dnn::data_partition_point(f.graph)) << "max=" << max;
    for (std::size_t i = 0; i < thinned.size(); ++i) {
      if (i > 0) EXPECT_LT(thinned[i - 1], thinned[i]) << "max=" << max;  // sorted, no dups
      EXPECT_TRUE(std::find(full.begin(), full.end(), thinned[i]) != full.end())
          << "max=" << max << " candidate " << thinned[i] << " not a clean spatial cut";
    }
  }
}

TEST(DataPartitioner, SingleCandidateKeepsDeepestSplit) {
  Fixture f;
  const auto thinned = data_split_candidates(f.graph, 1);
  ASSERT_EQ(thinned.size(), 1u);
  EXPECT_EQ(thinned.front(), dnn::data_partition_point(f.graph));
  // The sweep with one candidate must still produce a valid plan.
  const auto result = plan_best_data_partition(f.cost, {0, 1}, 0, 1);
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.split_layer, dnn::data_partition_point(f.graph));
}

TEST(DataPartitioner, CandidateListMemoMatchesFreeFunction) {
  Fixture f;
  for (int max : {1, 2, 5, 12, 100}) {
    EXPECT_EQ(f.cost.data_split_candidate_list(max), data_split_candidates(f.graph, max))
        << "max=" << max;
  }
}

TEST(DataPartitioner, ExplicitSplitRespected) {
  Fixture f;
  const auto candidates = data_split_candidates(f.graph, 12);
  ASSERT_GE(candidates.size(), 2u);
  const int shallow = candidates.front();
  const auto result = plan_data_partition(f.cost, {0, 1}, 0, shallow);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.split_layer, shallow);
}

TEST(DataPartitioner, InvalidSplitRejected) {
  Fixture f;
  EXPECT_FALSE(plan_data_partition(f.cost, {0, 1}, 0, static_cast<int>(f.graph.size())).valid);
}

TEST(DataPartitioner, FasterNodeGetsMoreRows) {
  Fixture f;
  // Use a shallow split (56-row target) so both nodes receive rows.
  const auto candidates = data_split_candidates(f.graph, 12);
  const auto result = plan_data_partition(f.cost, {0, 4}, 0, candidates.front());
  ASSERT_TRUE(result.valid);
  ASSERT_EQ(result.slices.size(), 2u);
  EXPECT_GT(result.slices[0].target_rows.size(), result.slices[1].target_rows.size() * 3);
}

TEST(DataPartitioner, LeaderSlicePaysNoRadio) {
  Fixture f;
  const auto result = plan_data_partition(f.cost, {0, 1}, 0);
  ASSERT_TRUE(result.valid);
  const auto& leader_slice = result.slices[0];
  ASSERT_EQ(leader_slice.node, 0u);
  EXPECT_NEAR(leader_slice.total_s, leader_slice.compute_s, 1e-12);
  const auto& remote_slice = result.slices[1];
  EXPECT_GT(remote_slice.total_s, remote_slice.compute_s);
}

TEST(DataPartitioner, HeadRunsOnLeader) {
  Fixture f;
  const auto result = plan_data_partition(f.cost, {0, 1, 2}, 0);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.head_node, 0u);
  EXPECT_GT(result.head_s, 0.0);  // VGG's FC head is heavy
  EXPECT_GE(result.latency_s, result.head_s);
}

TEST(DataPartitioner, SqueezeExciteChargesSyncBytes) {
  const auto graph = dnn::zoo::build_efficientnet_b0();
  const auto nodes = platform::paper_cluster();
  const net::NetworkSpec network(nodes);
  ClusterCostModel cost(graph, nodes, network, NodeExecutionPolicy::kHierarchicalLocal);
  const auto result = plan_data_partition(cost, {0, 1}, 0);
  ASSERT_TRUE(result.valid);
  for (const auto& slice : result.slices) {
    EXPECT_GT(slice.sync_bytes, 0) << "EfficientNet slices must all-reduce SE";
  }
}

TEST(DataPartitioner, VggHasNoSyncBytes) {
  Fixture f;
  const auto result = plan_data_partition(f.cost, {0, 1}, 0);
  ASSERT_TRUE(result.valid);
  for (const auto& slice : result.slices) EXPECT_EQ(slice.sync_bytes, 0);
}

TEST(DataPartitioner, NoWorkersInvalid) {
  Fixture f;
  EXPECT_FALSE(plan_data_partition(f.cost, {}, 0).valid);
}

TEST(DataPartitioner, HeadOnlyGraphInvalid) {
  dnn::DnnGraph g("head-only");
  int x = g.add_input(64, 1, 1);
  x = g.dense(x, 10);
  g.softmax(x);
  const auto nodes = platform::paper_cluster(2);
  const net::NetworkSpec network(nodes);
  ClusterCostModel cost(g, nodes, network, NodeExecutionPolicy::kDefaultProcessor);
  EXPECT_FALSE(plan_data_partition(cost, {0, 1}, 0).valid);
}

TEST(DataPartitioner, DefaultPolicyUsesDefaultPlacement) {
  Fixture f;
  ClusterCostModel dflt(f.graph, f.nodes, f.network, NodeExecutionPolicy::kDefaultProcessor);
  const auto hier = plan_data_partition(f.cost, {0, 1}, 0);
  const auto base = plan_data_partition(dflt, {0, 1}, 0);
  ASSERT_TRUE(hier.valid && base.valid);
  EXPECT_LT(hier.latency_s, base.latency_s);  // hierarchical local tier wins
  for (const auto& slice : base.slices) {
    EXPECT_EQ(slice.local.config.mode, LocalMode::kSingleProcessor);
  }
}

}  // namespace
}  // namespace hidp::partition
