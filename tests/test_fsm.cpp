// Runtime-scheduler FSM (paper Fig. 4): legal transitions per role, traces.
#include <gtest/gtest.h>

#include "core/scheduler_fsm.hpp"

namespace hidp::core {
namespace {

TEST(Fsm, StartsInAnalyze) {
  RuntimeSchedulerFsm fsm(FsmRole::kLeader);
  EXPECT_EQ(fsm.state(), FsmState::kAnalyze);
  EXPECT_TRUE(fsm.trace().empty());
}

TEST(Fsm, LeaderLegalSequence) {
  RuntimeSchedulerFsm fsm(FsmRole::kLeader);
  fsm.transition(FsmState::kExplore, 0.1);
  fsm.transition(FsmState::kGlobalOffload, 0.2);
  fsm.transition(FsmState::kLocalMap, 0.2);
  fsm.transition(FsmState::kExecute, 0.3);
  fsm.transition(FsmState::kGlobalOffload, 0.9);  // gather + merge
  fsm.transition(FsmState::kAnalyze, 0.9);
  EXPECT_EQ(fsm.state(), FsmState::kAnalyze);
  EXPECT_EQ(fsm.trace().size(), 6u);
}

TEST(Fsm, LeaderIllegalTransitionsThrow) {
  RuntimeSchedulerFsm fsm(FsmRole::kLeader);
  EXPECT_THROW(fsm.transition(FsmState::kExecute, 0.0), std::logic_error);
  EXPECT_THROW(fsm.transition(FsmState::kLocalMap, 0.0), std::logic_error);
  fsm.transition(FsmState::kExplore, 0.0);
  EXPECT_THROW(fsm.transition(FsmState::kAnalyze, 0.1), std::logic_error);
}

TEST(Fsm, FollowerSkipsExplore) {
  RuntimeSchedulerFsm fsm(FsmRole::kFollower);
  EXPECT_FALSE(RuntimeSchedulerFsm::legal(FsmRole::kFollower, FsmState::kAnalyze,
                                          FsmState::kExplore));
  fsm.transition(FsmState::kLocalMap, 0.0);
  fsm.transition(FsmState::kExecute, 0.1);
  fsm.transition(FsmState::kAnalyze, 0.5);  // report back
  EXPECT_EQ(fsm.trace().size(), 3u);
}

TEST(Fsm, FollowerCannotOffload) {
  EXPECT_FALSE(RuntimeSchedulerFsm::legal(FsmRole::kFollower, FsmState::kLocalMap,
                                          FsmState::kGlobalOffload));
}

TEST(Fsm, LeaderRoundHelper) {
  RuntimeSchedulerFsm fsm(FsmRole::kLeader);
  const double elapsed = fsm.run_leader_round(10.0, 0.002, 0.010, 0.005, 0.100);
  EXPECT_NEAR(elapsed, 0.117, 1e-12);
  EXPECT_EQ(fsm.state(), FsmState::kAnalyze);
  ASSERT_GE(fsm.trace().size(), 6u);
  // Timestamps are monotone.
  for (std::size_t i = 1; i < fsm.trace().size(); ++i) {
    EXPECT_GE(fsm.trace()[i].at_s, fsm.trace()[i - 1].at_s);
  }
  // The round visits Explore exactly once and Execute exactly once.
  int explores = 0, executes = 0;
  for (const auto& t : fsm.trace()) {
    explores += t.to == FsmState::kExplore ? 1 : 0;
    executes += t.to == FsmState::kExecute ? 1 : 0;
  }
  EXPECT_EQ(explores, 1);
  EXPECT_EQ(executes, 1);
}

TEST(Fsm, FollowerRoundHelper) {
  RuntimeSchedulerFsm fsm(FsmRole::kFollower);
  const double elapsed = fsm.run_follower_round(0.0, 0.005, 0.050);
  EXPECT_NEAR(elapsed, 0.055, 1e-12);
  EXPECT_EQ(fsm.state(), FsmState::kAnalyze);
}

TEST(Fsm, ConsecutiveRoundsWork) {
  RuntimeSchedulerFsm fsm(FsmRole::kLeader);
  fsm.run_leader_round(0.0, 0.001, 0.01, 0.005, 0.1);
  fsm.run_leader_round(1.0, 0.001, 0.01, 0.005, 0.1);
  EXPECT_EQ(fsm.trace().size(), 12u);
}

TEST(Fsm, StateNames) {
  EXPECT_EQ(fsm_state_name(FsmState::kAnalyze), "Analyze");
  EXPECT_EQ(fsm_state_name(FsmState::kExplore), "Explore");
  EXPECT_EQ(fsm_state_name(FsmState::kGlobalOffload), "Global:Offload");
  EXPECT_EQ(fsm_state_name(FsmState::kLocalMap), "Local:Map");
  EXPECT_EQ(fsm_state_name(FsmState::kExecute), "Execute");
}

}  // namespace
}  // namespace hidp::core
