// Equivalence proofs for the PR 2 data-partition fast path: the flattened
// receptive-field walker and the memoised (split, band) slice tables must
// return bit-identical results to the seed per-candidate loop (kept verbatim
// as plan_data_partition_reference) across the zoo models, both execution
// policies, and randomized worker subsets.
#include <gtest/gtest.h>

#include <algorithm>

#include "dnn/receptive_field.hpp"
#include "dnn/zoo/zoo.hpp"
#include "partition/data_partitioner.hpp"
#include "platform/device_db.hpp"
#include "util/rng.hpp"

namespace hidp::partition {
namespace {

using dnn::RowRange;

std::vector<dnn::DnnGraph> zoo_graphs() {
  std::vector<dnn::DnnGraph> graphs;
  graphs.push_back(dnn::zoo::build_vgg19());
  graphs.push_back(dnn::zoo::build_resnet152());
  graphs.push_back(dnn::zoo::build_inception_v3());
  graphs.push_back(dnn::zoo::build_efficientnet_b0());
  return graphs;
}

void expect_decisions_identical(const LocalDecision& a, const LocalDecision& b,
                                const std::string& where) {
  EXPECT_EQ(a.latency_s, b.latency_s) << where;  // bit-identical, not NEAR
  EXPECT_EQ(a.config.mode, b.config.mode) << where;
  ASSERT_EQ(a.config.shares.size(), b.config.shares.size()) << where;
  for (std::size_t i = 0; i < a.config.shares.size(); ++i) {
    EXPECT_EQ(a.config.shares[i].proc, b.config.shares[i].proc) << where;
    EXPECT_EQ(a.config.shares[i].share, b.config.shares[i].share) << where;
    EXPECT_EQ(a.config.shares[i].data_partitions, b.config.shares[i].data_partitions) << where;
  }
}

void expect_results_identical(const DataPartitionResult& fast,
                              const DataPartitionResult& reference,
                              const std::string& where) {
  ASSERT_EQ(fast.valid, reference.valid) << where;
  if (!fast.valid) return;
  EXPECT_EQ(fast.split_layer, reference.split_layer) << where;
  EXPECT_EQ(fast.head_node, reference.head_node) << where;
  EXPECT_EQ(fast.head_s, reference.head_s) << where;
  EXPECT_EQ(fast.latency_s, reference.latency_s) << where;
  expect_decisions_identical(fast.head_local, reference.head_local, where + " head");
  ASSERT_EQ(fast.slices.size(), reference.slices.size()) << where;
  for (std::size_t i = 0; i < fast.slices.size(); ++i) {
    const auto& a = fast.slices[i];
    const auto& b = reference.slices[i];
    const std::string slice_where = where + " slice " + std::to_string(i);
    EXPECT_EQ(a.node, b.node) << slice_where;
    EXPECT_EQ(a.target_rows, b.target_rows) << slice_where;
    EXPECT_EQ(a.input_bytes, b.input_bytes) << slice_where;
    EXPECT_EQ(a.output_bytes, b.output_bytes) << slice_where;
    EXPECT_EQ(a.sync_bytes, b.sync_bytes) << slice_where;
    EXPECT_EQ(a.compute_s, b.compute_s) << slice_where;
    EXPECT_EQ(a.total_s, b.total_s) << slice_where;
    EXPECT_EQ(a.work.total(), b.work.total()) << slice_where;
    EXPECT_EQ(a.work.layer_count(), b.work.layer_count()) << slice_where;
    for (int k = 0; k < dnn::kLayerKindCount; ++k) {
      for (int c = 0; c < platform::kWorkClassCount; ++c) {
        EXPECT_EQ(a.work.flops_of(static_cast<dnn::LayerKind>(k),
                                  static_cast<platform::WorkClass>(c)),
                  b.work.flops_of(static_cast<dnn::LayerKind>(k),
                                  static_cast<platform::WorkClass>(c)))
            << slice_where;
      }
    }
    expect_decisions_identical(a.local, b.local, slice_where);
  }
}

TEST(RowBackpropEquivalence, MatchesFreeFunctionAcrossZooAndBands) {
  util::Rng rng(20260731);
  for (const auto& graph : zoo_graphs()) {
    dnn::RowBackprop backprop(graph);
    for (int split : data_split_candidates(graph, 0)) {
      const int height = graph.layer(split - 1).output.height;
      for (int trial = 0; trial < 8; ++trial) {
        const int begin = static_cast<int>(rng.next_u64() % static_cast<std::uint64_t>(height));
        const int end =
            begin + 1 +
            static_cast<int>(rng.next_u64() % static_cast<std::uint64_t>(height - begin));
        const RowRange band{begin, end};
        const auto expected = dnn::backpropagate_rows(graph, split, band);
        const auto& flat = backprop(split, band);
        ASSERT_EQ(flat.size(), expected.size());
        for (std::size_t l = 0; l < expected.size(); ++l) {
          ASSERT_EQ(flat[l], expected[l]) << graph.name() << " split " << split << " layer " << l;
        }
      }
    }
  }
}

TEST(RowBackpropEquivalence, BatchMatchesSingleQueries) {
  for (const auto& graph : zoo_graphs()) {
    dnn::RowBackprop backprop(graph);
    for (int split : data_split_candidates(graph, 6)) {
      const int height = graph.layer(split - 1).output.height;
      const std::vector<RowRange> bands =
          proportional_row_bands(height, {3.0, 1.0, 2.0, 0.5});
      const auto& batch = backprop.run_batch(split, bands.data(), bands.size());
      for (std::size_t k = 0; k < bands.size(); ++k) {
        const auto expected = dnn::backpropagate_rows(graph, split, bands[k]);
        for (int l = 0; l < split; ++l) {
          ASSERT_EQ(batch[static_cast<std::size_t>(l) * bands.size() + k],
                    expected[static_cast<std::size_t>(l)])
              << graph.name() << " split " << split << " band " << k << " layer " << l;
        }
      }
    }
  }
}

class DataPartitionEquivalence : public ::testing::TestWithParam<NodeExecutionPolicy> {};

TEST_P(DataPartitionEquivalence, MemoisedPathMatchesSeedLoop) {
  const auto nodes = platform::paper_cluster();
  const net::NetworkSpec network(nodes);
  util::Rng rng(42);
  for (const auto& graph : zoo_graphs()) {
    ClusterCostModel cost(graph, nodes, network, GetParam());
    // Randomized worker bands: random subset sizes, orders and leaders.
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<std::size_t> workers(nodes.size());
      for (std::size_t j = 0; j < nodes.size(); ++j) workers[j] = j;
      for (std::size_t j = workers.size(); j > 1; --j) {
        std::swap(workers[j - 1], workers[rng.next_u64() % j]);
      }
      workers.resize(2 + rng.next_u64() % (nodes.size() - 1));
      const std::size_t leader = workers[rng.next_u64() % workers.size()];
      const std::string where = graph.name() + " trial " + std::to_string(trial);

      for (int split : cost.data_split_candidate_list(12)) {
        expect_results_identical(plan_data_partition(cost, workers, leader, split),
                                 plan_data_partition_reference(cost, workers, leader, split),
                                 where + " split " + std::to_string(split));
      }
      expect_results_identical(plan_best_data_partition(cost, workers, leader),
                               plan_best_data_partition_reference(cost, workers, leader),
                               where + " best");
    }
  }
}

TEST_P(DataPartitionEquivalence, SearchSpaceChangeInvalidatesDecisions) {
  const auto nodes = platform::paper_cluster();
  const net::NetworkSpec network(nodes);
  const auto graph = dnn::zoo::build_vgg19();
  ClusterCostModel cost(graph, nodes, network, GetParam());
  (void)plan_best_data_partition(cost, {0, 1, 2}, 0);  // warm the memos

  LocalSearchSpace seed_space;
  seed_space.use_golden_section = false;
  cost.set_local_search_space(seed_space);
  // After the switch both paths must still agree (stale memoised decisions
  // from the old search space would break this).
  expect_results_identical(plan_best_data_partition(cost, {0, 1, 2}, 0),
                           plan_best_data_partition_reference(cost, {0, 1, 2}, 0),
                           "post search-space change");
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, DataPartitionEquivalence,
                         ::testing::Values(NodeExecutionPolicy::kHierarchicalLocal,
                                           NodeExecutionPolicy::kDefaultProcessor),
                         [](const auto& info) {
                           return info.param == NodeExecutionPolicy::kHierarchicalLocal
                                      ? std::string("Hierarchical")
                                      : std::string("DefaultProcessor");
                         });

}  // namespace
}  // namespace hidp::partition
