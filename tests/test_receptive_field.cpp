// Unit + property tests for receptive-field row propagation.
#include <gtest/gtest.h>

#include "dnn/receptive_field.hpp"
#include "dnn/zoo/zoo.hpp"
#include "util/rng.hpp"

namespace hidp::dnn {
namespace {

Layer make_layer(LayerKind kind, int kernel, int stride, bool same, int out_h) {
  Layer l;
  l.kind = kind;
  l.params.kernel = kernel;
  l.params.stride = stride;
  l.params.same_padding = same;
  l.output.height = out_h;
  l.output.channels = 1;
  l.output.width = out_h;
  return l;
}

TEST(RowRange, HullMergesAndHandlesEmpty) {
  EXPECT_EQ(hull(RowRange{2, 5}, RowRange{4, 9}), (RowRange{2, 9}));
  EXPECT_EQ(hull(RowRange{}, RowRange{4, 9}), (RowRange{4, 9}));
  EXPECT_EQ(hull(RowRange{1, 3}, RowRange{}), (RowRange{1, 3}));
  EXPECT_TRUE(RowRange{}.empty());
  EXPECT_EQ((RowRange{3, 7}).size(), 4);
}

TEST(ReceptiveField, Conv3x3SameExpandsByOne) {
  const Layer l = make_layer(LayerKind::kConv2D, 3, 1, true, 10);
  EXPECT_EQ(layer_input_rows(l, RowRange{4, 6}, 10), (RowRange{3, 7}));
  // Clamped at the borders.
  EXPECT_EQ(layer_input_rows(l, RowRange{0, 2}, 10), (RowRange{0, 3}));
  EXPECT_EQ(layer_input_rows(l, RowRange{8, 10}, 10), (RowRange{7, 10}));
}

TEST(ReceptiveField, StridedConvMapsRows) {
  const Layer l = make_layer(LayerKind::kConv2D, 3, 2, true, 5);  // in height 10
  // SAME pad total = (5-1)*2+3-10 = 1 -> symmetric model applies 0 above;
  // output row 2 -> input rows [2*2-0, 2*2-0+3) = [4, 7).
  EXPECT_EQ(layer_input_rows(l, RowRange{2, 3}, 10), (RowRange{4, 7}));
}

TEST(ReceptiveField, ElementwiseIsIdentity) {
  const Layer l = make_layer(LayerKind::kActivation, 0, 1, false, 10);
  EXPECT_EQ(layer_input_rows(l, RowRange{3, 7}, 10), (RowRange{3, 7}));
}

TEST(ReceptiveField, GlobalLayersNeedEverything) {
  const Layer l = make_layer(LayerKind::kGlobalAvgPool, 0, 1, false, 1);
  EXPECT_EQ(layer_input_rows(l, RowRange{0, 1}, 10), (RowRange{0, 10}));
}

TEST(ReceptiveField, EmptyRangeStaysEmpty) {
  const Layer l = make_layer(LayerKind::kConv2D, 3, 1, true, 10);
  EXPECT_TRUE(layer_input_rows(l, RowRange{}, 10).empty());
}

TEST(Backpropagate, ChainGrowsMonotonically) {
  DnnGraph g;
  int x = g.add_input(3, 32, 32);
  for (int i = 0; i < 4; ++i) x = g.conv(x, 4, 3, 1, true, Activation::kRelu);
  const auto req = backpropagate_rows(g, static_cast<int>(g.size()), RowRange{10, 12});
  // Each 3x3 conv adds one row of halo on each side.
  EXPECT_EQ(req[4], (RowRange{10, 12}));
  EXPECT_EQ(req[3], (RowRange{9, 13}));
  EXPECT_EQ(req[2], (RowRange{8, 14}));
  EXPECT_EQ(req[1], (RowRange{7, 15}));
  EXPECT_EQ(req[0], (RowRange{6, 16}));
}

TEST(Backpropagate, BranchesTakeHull) {
  DnnGraph g;
  int x = g.add_input(3, 32, 32);
  x = g.conv(x, 4, 3, 1, true);                        // 1
  int a = g.conv(x, 4, 1, 1, true);                    // 2: 1x1, no halo
  int b = g.conv(x, 4, 5, 1, true);                    // 3: 5x5, halo 2
  g.concat({a, b});                                    // 4
  const auto req = backpropagate_rows(g, 5, RowRange{10, 12});
  EXPECT_EQ(req[2], (RowRange{10, 12}));
  EXPECT_EQ(req[3], (RowRange{10, 12}));
  EXPECT_EQ(req[1], (RowRange{8, 14}));   // hull of 1x1 (10..12) and 5x5 (8..14)
  EXPECT_EQ(req[0], (RowRange{7, 15}));
}

TEST(Backpropagate, FullTargetNeedsFullInput) {
  const DnnGraph g = zoo::build_vgg19(64, 10);
  const int split = data_partition_point(g);
  ASSERT_GT(split, 0);
  const int target_rows = g.layer(split - 1).output.height;
  const auto req = backpropagate_rows(g, split, RowRange{0, target_rows});
  EXPECT_EQ(req[0], (RowRange{0, 64}));
}

// Property: the union of the slices' requirements equals the requirement of
// the full band at every layer — no slice under- or over-reads relative to
// what whole-band execution needs (strided layers legitimately leave "dead"
// rows that no slice, and no whole-band run, ever touches).
class BackpropagateCoverage : public ::testing::TestWithParam<int> {};

TEST_P(BackpropagateCoverage, UnionMatchesFullBandRequirement) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  DnnGraph g;
  int x = g.add_input(3, 40, 40);
  int depth = 2 + GetParam() % 4;
  for (int i = 0; i < depth; ++i) {
    const int kernel = 1 + 2 * static_cast<int>(rng.uniform_int(0, 2));  // 1/3/5
    const int stride = rng.uniform() < 0.3 ? 2 : 1;
    x = g.conv(x, 4, kernel, stride, true, Activation::kRelu);
    if (i == depth / 2) x = g.squeeze_excite(x, 2);  // exercise ownership
  }
  const int split = static_cast<int>(g.size());
  const int target_rows = g.layer(split - 1).output.height;
  const int sigma = 2 + GetParam() % 3;
  const auto full = backpropagate_rows(g, split, RowRange{0, target_rows});
  std::vector<RowRange> hulls(g.size());
  int cursor = 0;
  for (int s = 0; s < sigma; ++s) {
    const int end = target_rows * (s + 1) / sigma;
    const auto req = backpropagate_rows(g, split, RowRange{cursor, end});
    for (std::size_t l = 0; l < g.size(); ++l) {
      hulls[l] = hull(hulls[l], req[l]);
      // Slices never need rows the full band would not need.
      if (!req[l].empty()) {
        EXPECT_GE(req[l].begin, full[l].begin) << "layer " << l;
        EXPECT_LE(req[l].end, full[l].end) << "layer " << l;
      }
    }
    cursor = end;
  }
  for (std::size_t l = 0; l < g.size(); ++l) {
    EXPECT_EQ(hulls[l], full[l]) << "layer " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomChains, BackpropagateCoverage, ::testing::Range(0, 12));

TEST(ProportionalShare, PartitionsAnyHeight) {
  // Bands partitioning [0, 20) map to shares partitioning [0, 7).
  const std::vector<RowRange> bands{{0, 6}, {6, 13}, {13, 20}};
  int cursor = 0;
  for (const RowRange& band : bands) {
    const RowRange share = proportional_share(7, band, 20);
    EXPECT_EQ(share.begin, cursor);
    cursor = share.end;
  }
  EXPECT_EQ(cursor, 7);
  EXPECT_TRUE(proportional_share(7, RowRange{}, 20).empty());
}

TEST(DataPartitionPoint, ZooModelsSplitLate) {
  for (const auto id : zoo::all_models()) {
    const DnnGraph g = zoo::build_model(id);
    const int split = data_partition_point(g);
    EXPECT_GT(split, static_cast<int>(g.size()) / 2) << zoo::model_name(id);
    EXPECT_LE(split, g.spatial_prefix_end()) << zoo::model_name(id);
    // The split layer still has spatial extent.
    EXPECT_GT(g.layer(split - 1).output.height, 1) << zoo::model_name(id);
  }
}

TEST(DataPartitionPoint, DegenerateGraphHasNone) {
  DnnGraph g;
  int x = g.add_input(16, 1, 1);
  x = g.dense(x, 8);
  g.softmax(x);
  EXPECT_EQ(data_partition_point(g), 0);
}

}  // namespace
}  // namespace hidp::dnn
