// Equivalence proofs for the flattened/memoised DSE hot path: the flat DP
// and the delta-evaluating greedy must return bit-identical blocks and
// objectives to the seed implementations (reproduced verbatim below), the
// golden-section local search must land within 1% of the exhaustive sweep,
// and the cross-request plan cache must reuse decisions without changing
// them.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/hidp_strategy.hpp"
#include "dnn/zoo/zoo.hpp"
#include "partition/cost_model.hpp"
#include "partition/linear_partition.hpp"
#include "partition/local_config.hpp"
#include "platform/device_db.hpp"
#include "runtime/workload.hpp"
#include "util/rng.hpp"

namespace hidp::partition {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Plans through the redesigned PlanRequest surface.
runtime::Plan plan_hidp(core::HidpStrategy& hidp, const dnn::DnnGraph& model,
                        const runtime::ClusterSnapshot& snap) {
  runtime::PlanRequest request;
  request.model = &model;
  request.snapshot = snap;
  return hidp.plan(request).plan;
}


// ---------------------------------------------------------------------------
// Seed reference implementations (the pre-optimisation algorithms, kept
// verbatim so every refactor of the production engines is checked against
// the original decision procedure).
namespace seedref {

double combine(PartitionObjective objective, double acc, double stage, double boundary) {
  if (objective == PartitionObjective::kMinimizeSum) return acc + stage + boundary;
  return std::max(acc, stage + boundary);
}

LinearPartitionResult dp_linear_partition(int num_segments, int num_workers,
                                          const StageCostFn& stage_cost,
                                          const BoundaryCostFn& boundary_cost,
                                          PartitionObjective objective) {
  LinearPartitionResult result;
  if (num_segments <= 0 || num_workers <= 0) return result;

  const int s_count = num_segments + 1;
  std::vector<std::vector<double>> best(
      static_cast<std::size_t>(s_count),
      std::vector<double>(static_cast<std::size_t>(num_workers), kInf));
  struct Back {
    int prev_boundary = -1;
    int prev_worker = -1;
  };
  std::vector<std::vector<Back>> back(
      static_cast<std::size_t>(s_count),
      std::vector<Back>(static_cast<std::size_t>(num_workers)));

  for (int w = 0; w < num_workers; ++w) {
    for (int s = 1; s <= num_segments; ++s) {
      const double stage = stage_cost(0, s, w);
      if (!std::isfinite(stage)) continue;
      const double value = combine(objective, 0.0, stage, 0.0);
      auto& slot = best[static_cast<std::size_t>(s)][static_cast<std::size_t>(w)];
      if (value < slot) {
        slot = value;
        back[static_cast<std::size_t>(s)][static_cast<std::size_t>(w)] = Back{0, -1};
      }
    }
  }

  for (int s1 = 1; s1 < num_segments; ++s1) {
    for (int w1 = 0; w1 < num_workers; ++w1) {
      const double acc = best[static_cast<std::size_t>(s1)][static_cast<std::size_t>(w1)];
      if (!std::isfinite(acc)) continue;
      for (int w2 = w1 + 1; w2 < num_workers; ++w2) {
        const double handoff = boundary_cost(s1, w1, w2);
        if (!std::isfinite(handoff)) continue;
        for (int s2 = s1 + 1; s2 <= num_segments; ++s2) {
          const double stage = stage_cost(s1, s2, w2);
          if (!std::isfinite(stage)) continue;
          const double value = combine(objective, acc, stage, handoff);
          auto& slot = best[static_cast<std::size_t>(s2)][static_cast<std::size_t>(w2)];
          if (value < slot) {
            slot = value;
            back[static_cast<std::size_t>(s2)][static_cast<std::size_t>(w2)] = Back{s1, w1};
          }
        }
      }
    }
  }

  int best_worker = -1;
  double best_value = kInf;
  for (int w = 0; w < num_workers; ++w) {
    const double v = best[static_cast<std::size_t>(num_segments)][static_cast<std::size_t>(w)];
    if (v < best_value) {
      best_value = v;
      best_worker = w;
    }
  }
  if (best_worker < 0) return result;

  std::vector<LinearPartitionResult::Block> reversed;
  int s = num_segments;
  int w = best_worker;
  while (s > 0 && w >= 0) {
    const Back& b = back[static_cast<std::size_t>(s)][static_cast<std::size_t>(w)];
    reversed.push_back({b.prev_boundary, s, w});
    s = b.prev_boundary;
    w = b.prev_worker;
  }
  result.blocks.assign(reversed.rbegin(), reversed.rend());
  result.objective = best_value;
  evaluate_partition(result.blocks, stage_cost, boundary_cost, objective, &result.sum_cost,
                     &result.bottleneck_cost);
  return result;
}

LinearPartitionResult greedy_backprop_partition(int num_segments, int num_workers,
                                                const std::vector<double>& worker_rates,
                                                const std::vector<double>& segment_weights,
                                                const StageCostFn& stage_cost,
                                                const BoundaryCostFn& boundary_cost,
                                                PartitionObjective objective) {
  LinearPartitionResult result;
  if (num_segments <= 0 || num_workers <= 0) return result;

  std::vector<double> prefix(static_cast<std::size_t>(num_segments) + 1, 0.0);
  for (int i = 0; i < num_segments; ++i) {
    const double wgt =
        i < static_cast<int>(segment_weights.size()) ? segment_weights[static_cast<std::size_t>(i)] : 1.0;
    prefix[static_cast<std::size_t>(i) + 1] = prefix[static_cast<std::size_t>(i)] + wgt;
  }
  double rate_total = 0.0;
  for (int w = 0; w < num_workers; ++w) {
    rate_total += w < static_cast<int>(worker_rates.size())
                      ? std::max(worker_rates[static_cast<std::size_t>(w)], 0.0)
                      : 1.0;
  }
  if (rate_total <= 0.0) rate_total = static_cast<double>(num_workers);

  std::vector<int> boundaries(static_cast<std::size_t>(num_workers) + 1, 0);
  boundaries[static_cast<std::size_t>(num_workers)] = num_segments;
  double acc_rate = 0.0;
  for (int w = 0; w < num_workers - 1; ++w) {
    acc_rate += w < static_cast<int>(worker_rates.size())
                    ? std::max(worker_rates[static_cast<std::size_t>(w)], 0.0)
                    : 1.0;
    const double target = prefix.back() * acc_rate / rate_total;
    int b = boundaries[static_cast<std::size_t>(w)];
    while (b < num_segments && prefix[static_cast<std::size_t>(b)] < target) ++b;
    boundaries[static_cast<std::size_t>(w) + 1] = std::max(b, boundaries[static_cast<std::size_t>(w)]);
  }

  auto blocks_from = [&](const std::vector<int>& bounds) {
    std::vector<LinearPartitionResult::Block> blocks;
    for (int w = 0; w < num_workers; ++w) {
      const int lo = bounds[static_cast<std::size_t>(w)];
      const int hi = bounds[static_cast<std::size_t>(w) + 1];
      if (hi > lo) blocks.push_back({lo, hi, w});
    }
    return blocks;
  };

  double current = evaluate_partition(blocks_from(boundaries), stage_cost, boundary_cost,
                                      objective);

  bool improved = true;
  int guard = num_segments * num_workers * 4;
  while (improved && guard-- > 0) {
    improved = false;
    for (int w = num_workers - 1; w >= 1; --w) {
      for (int delta : {-1, +1}) {
        std::vector<int> trial = boundaries;
        auto& b = trial[static_cast<std::size_t>(w)];
        b += delta;
        if (b < trial[static_cast<std::size_t>(w) - 1] || b > trial[static_cast<std::size_t>(w) + 1]) {
          continue;
        }
        const double value =
            evaluate_partition(blocks_from(trial), stage_cost, boundary_cost, objective);
        if (value + 1e-12 < current) {
          current = value;
          boundaries = std::move(trial);
          improved = true;
        }
      }
    }
  }

  result.blocks = blocks_from(boundaries);
  result.objective = current;
  evaluate_partition(result.blocks, stage_cost, boundary_cost, objective, &result.sum_cost,
                     &result.bottleneck_cost);
  return result;
}

}  // namespace seedref

// ---------------------------------------------------------------------------

struct RandomCosts {
  std::vector<double> seg_cost;
  std::vector<double> rate;
  std::vector<double> handoff;
  StageCostFn stage;
  BoundaryCostFn boundary;

  RandomCosts(int segments, int workers, util::Rng& rng, bool duplicate_workers = false) {
    seg_cost.resize(static_cast<std::size_t>(segments));
    for (auto& v : seg_cost) v = rng.uniform(0.05, 2.0);
    rate.resize(static_cast<std::size_t>(workers));
    for (auto& v : rate) v = rng.uniform(0.5, 4.0);
    if (duplicate_workers && workers >= 2) {
      // Identical hardware -> exact cost ties, the adversarial case for
      // branch-and-bound pruning.
      for (std::size_t w = 1; w < rate.size(); ++w) rate[w] = rate[0];
    }
    handoff.resize(static_cast<std::size_t>(segments) + 1);
    for (auto& v : handoff) v = rng.uniform(0.005, 0.4);
    // Monotone-in-width latency costs, like every cost model in the repo.
    stage = [this](int b, int e, int w) {
      double total = 0.0;
      for (int s = b; s < e; ++s) total += seg_cost[static_cast<std::size_t>(s)];
      return total / rate[static_cast<std::size_t>(w)];
    };
    boundary = [this](int cut, int, int) { return handoff[static_cast<std::size_t>(cut)]; };
  }
};

void expect_identical(const LinearPartitionResult& ours, const LinearPartitionResult& seed,
                      const char* what) {
  ASSERT_EQ(ours.valid(), seed.valid()) << what;
  if (!seed.valid()) return;
  // Bit-identical objective and block layout: the optimised engines must
  // not change a single decision.
  EXPECT_EQ(ours.objective, seed.objective) << what;
  EXPECT_EQ(ours.sum_cost, seed.sum_cost) << what;
  EXPECT_EQ(ours.bottleneck_cost, seed.bottleneck_cost) << what;
  ASSERT_EQ(ours.blocks.size(), seed.blocks.size()) << what;
  for (std::size_t i = 0; i < seed.blocks.size(); ++i) {
    EXPECT_EQ(ours.blocks[i].begin, seed.blocks[i].begin) << what << " block " << i;
    EXPECT_EQ(ours.blocks[i].end, seed.blocks[i].end) << what << " block " << i;
    EXPECT_EQ(ours.blocks[i].worker, seed.blocks[i].worker) << what << " block " << i;
  }
}

TEST(DpEquivalence, RandomisedBitIdenticalToSeed) {
  util::Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const int segments = 3 + static_cast<int>(rng.uniform_int(0, 17));
    const int workers = 1 + static_cast<int>(rng.uniform_int(0, 4));
    RandomCosts costs(segments, workers, rng, trial % 5 == 0);
    for (const auto objective :
         {PartitionObjective::kMinimizeSum, PartitionObjective::kMinimizeBottleneck}) {
      const auto ours =
          dp_linear_partition(segments, workers, costs.stage, costs.boundary, objective);
      const auto seed = seedref::dp_linear_partition(segments, workers, costs.stage,
                                                     costs.boundary, objective);
      expect_identical(ours, seed, trial % 5 == 0 ? "dp (tied workers)" : "dp");
    }
  }
}

TEST(DpEquivalence, InfeasibleWorkersBitIdenticalToSeed) {
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int segments = 4 + static_cast<int>(rng.uniform_int(0, 8));
    const int workers = 2 + static_cast<int>(rng.uniform_int(0, 3));
    RandomCosts costs(segments, workers, rng);
    const int dead = static_cast<int>(rng.uniform_int(0, workers - 1));
    const StageCostFn stage = [&costs, dead](int b, int e, int w) {
      return w == dead ? kInf : costs.stage(b, e, w);
    };
    for (const auto objective :
         {PartitionObjective::kMinimizeSum, PartitionObjective::kMinimizeBottleneck}) {
      const auto ours =
          dp_linear_partition(segments, workers, stage, costs.boundary, objective);
      const auto seed =
          seedref::dp_linear_partition(segments, workers, stage, costs.boundary, objective);
      expect_identical(ours, seed, "dp with infeasible worker");
    }
  }
}

TEST(GreedyEquivalence, RandomisedBitIdenticalToSeed) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const int segments = 3 + static_cast<int>(rng.uniform_int(0, 17));
    const int workers = 1 + static_cast<int>(rng.uniform_int(0, 4));
    RandomCosts costs(segments, workers, rng, trial % 7 == 0);
    for (const auto objective :
         {PartitionObjective::kMinimizeSum, PartitionObjective::kMinimizeBottleneck}) {
      const auto ours = greedy_backprop_partition(segments, workers, costs.rate,
                                                  costs.seg_cost, costs.stage, costs.boundary,
                                                  objective);
      const auto seed = seedref::greedy_backprop_partition(segments, workers, costs.rate,
                                                           costs.seg_cost, costs.stage,
                                                           costs.boundary, objective);
      expect_identical(ours, seed, "greedy");
    }
  }
}

TEST(GreedyEquivalence, RealCostModelBitIdenticalToSeed) {
  // The same check against the actual cluster cost model (monotone stage
  // costs with real handoff structure), both objectives, several leaders.
  const auto nodes = platform::paper_cluster();
  const net::NetworkSpec network(nodes);
  for (const auto id : {dnn::zoo::ModelId::kResNet152, dnn::zoo::ModelId::kVgg19}) {
    const auto graph = dnn::zoo::build_model(id);
    ClusterCostModel cost(graph, nodes, network, NodeExecutionPolicy::kHierarchicalLocal);
    const int segments = static_cast<int>(cost.segment_count());
    std::vector<std::size_t> worker_nodes{1, 0, 2, 3, 4};
    const std::size_t leader = 1;
    const StageCostFn stage = [&](int begin, int end, int worker) {
      const std::size_t node = worker_nodes[static_cast<std::size_t>(worker)];
      double t = cost.node_time(node, begin, end);
      if (begin == 0 && node != leader) t += cost.transfer_s(leader, node, cost.boundary_bytes(0));
      if (end == segments && node != leader) {
        t += cost.transfer_s(node, leader, cost.boundary_bytes(segments));
      }
      return t;
    };
    const BoundaryCostFn boundary = [&](int b, int from, int to) {
      return cost.transfer_s(worker_nodes[static_cast<std::size_t>(from)],
                             worker_nodes[static_cast<std::size_t>(to)],
                             cost.boundary_bytes(b));
    };
    std::vector<double> rates;
    for (std::size_t node : worker_nodes) rates.push_back(cost.node_rate_gflops(node));
    std::vector<double> weights;
    for (int s = 0; s < segments; ++s) weights.push_back(cost.profile_between(s, s + 1).total());

    for (const auto objective :
         {PartitionObjective::kMinimizeSum, PartitionObjective::kMinimizeBottleneck}) {
      const auto dp_ours = dp_linear_partition(segments, 5, stage, boundary, objective);
      const auto dp_seed = seedref::dp_linear_partition(segments, 5, stage, boundary, objective);
      expect_identical(dp_ours, dp_seed, "dp on cost model");
      const auto greedy_ours = greedy_backprop_partition(segments, 5, rates, weights, stage,
                                                         boundary, objective);
      const auto greedy_seed = seedref::greedy_backprop_partition(segments, 5, rates, weights,
                                                                  stage, boundary, objective);
      expect_identical(greedy_ours, greedy_seed, "greedy on cost model");
    }
  }
}

TEST(StageCostTableTest, MemoisesAndMatchesUnderlyingFn) {
  int calls = 0;
  const StageCostFn fn = [&calls](int b, int e, int w) {
    ++calls;
    return static_cast<double>(e - b) * (w + 1);
  };
  StageCostTable table(10, 3, fn);
  EXPECT_EQ(table(2, 7, 1), 10.0);
  EXPECT_EQ(table(2, 7, 1), 10.0);
  EXPECT_EQ(calls, 1);
  const auto view = table.as_fn();
  EXPECT_EQ(view(2, 7, 1), 10.0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(view(0, 10, 2), 30.0);
  EXPECT_EQ(calls, 2);
}

TEST(GoldenSection, WithinOnePercentOfExhaustiveSweep) {
  // The analytic golden-section engine must never be more than 1% worse
  // than the seed's fixed-step sweep, on every board and zoo model, for
  // whole networks and for block-sized work profiles.
  LocalSearchSpace golden;
  LocalSearchSpace sweep;
  sweep.use_golden_section = false;
  for (const auto id : dnn::zoo::all_models()) {
    const auto graph = dnn::zoo::build_model(id);
    const auto whole = platform::WorkProfile::from_graph(graph);
    const auto block =
        platform::WorkProfile::from_graph(graph, 0, static_cast<int>(graph.size()) / 3);
    for (const platform::NodeModel& node : platform::paper_cluster()) {
      for (const auto& work : {whole, block}) {
        for (const std::int64_t io : {std::int64_t{0}, std::int64_t{1} << 20}) {
          const LocalDecision fast = best_local_config(node, work, io, golden);
          const LocalDecision slow = best_local_config(node, work, io, sweep);
          EXPECT_LE(fast.latency_s, slow.latency_s * 1.01 + 1e-12)
              << node.name() << " " << dnn::zoo::model_name(id) << " io=" << io;
        }
      }
    }
  }
}

TEST(PlanCache, SteadyStateHitsSkipExploreAndReuseDecision) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  core::HidpStrategy::Options options;
  options.probe_availability = false;  // deterministic availability
  core::HidpStrategy hidp(options);

  runtime::ClusterSnapshot snap;
  snap.nodes = &nodes;
  snap.network = net::NetworkSpec(nodes);
  snap.available.assign(nodes.size(), true);
  snap.leader = 1;

  const auto& graph = models.graph(dnn::zoo::ModelId::kResNet152);
  const runtime::Plan first = plan_hidp(hidp, graph, snap);
  EXPECT_EQ(hidp.plan_cache_stats().hits, 0u);
  EXPECT_EQ(hidp.plan_cache_stats().misses, 1u);
  EXPECT_NEAR(first.phases.explore_s + first.phases.map_s, 0.015, 1e-12);

  const runtime::Plan second = plan_hidp(hidp, graph, snap);
  EXPECT_EQ(hidp.plan_cache_stats().hits, 1u);
  // The cached plan is the same plan, minus the Explore/Map charge.
  ASSERT_EQ(second.tasks.size(), first.tasks.size());
  for (std::size_t i = 0; i < first.tasks.size(); ++i) {
    EXPECT_EQ(second.tasks[i].kind, first.tasks[i].kind);
    EXPECT_EQ(second.tasks[i].node, first.tasks[i].node);
    EXPECT_EQ(second.tasks[i].proc, first.tasks[i].proc);
    EXPECT_EQ(second.tasks[i].seconds, first.tasks[i].seconds);
  }
  EXPECT_EQ(second.global_mode, first.global_mode);
  EXPECT_EQ(second.predicted_latency_s, first.predicted_latency_s);
  EXPECT_LT(second.phases.explore_s + second.phases.map_s, 0.001);

  // Different availability -> different key -> miss.
  snap.available[4] = false;
  plan_hidp(hidp, graph, snap);
  EXPECT_EQ(hidp.plan_cache_stats().misses, 2u);

  // Deep queue buckets coarsely: 9 and 10 share a bucket.
  snap.available[4] = true;
  snap.queue_depth = 9;
  plan_hidp(hidp, graph, snap);
  const auto misses_before = hidp.plan_cache_stats().misses;
  snap.queue_depth = 10;
  plan_hidp(hidp, graph, snap);
  EXPECT_EQ(hidp.plan_cache_stats().misses, misses_before);

  // A different cluster object invalidates everything.
  const auto other_nodes = platform::paper_cluster();
  snap.nodes = &other_nodes;
  snap.queue_depth = 0;
  plan_hidp(hidp, graph, snap);
  EXPECT_GE(hidp.plan_cache_stats().invalidations, 1u);
}

TEST(PlanCache, DisabledCacheAlwaysExplores) {
  const auto nodes = platform::paper_cluster();
  runtime::ModelSet models;
  core::HidpStrategy::Options options;
  options.probe_availability = false;
  options.enable_plan_cache = false;
  core::HidpStrategy hidp(options);

  runtime::ClusterSnapshot snap;
  snap.nodes = &nodes;
  snap.network = net::NetworkSpec(nodes);
  snap.available.assign(nodes.size(), true);
  snap.leader = 1;
  const auto& graph = models.graph(dnn::zoo::ModelId::kVgg19);
  const runtime::Plan a = plan_hidp(hidp, graph, snap);
  const runtime::Plan b = plan_hidp(hidp, graph, snap);
  EXPECT_EQ(hidp.plan_cache_stats().hits, 0u);
  EXPECT_EQ(hidp.plan_cache_stats().misses, 0u);
  EXPECT_NEAR(b.phases.explore_s + b.phases.map_s, 0.015, 1e-12);
  EXPECT_EQ(a.tasks.size(), b.tasks.size());
}

TEST(QueueBuckets, ExactShallowCoarseDeep) {
  using core::queue_depth_bucket;
  EXPECT_EQ(queue_depth_bucket(0), 0);
  EXPECT_EQ(queue_depth_bucket(3), 3);
  EXPECT_EQ(queue_depth_bucket(4), 4);
  EXPECT_EQ(queue_depth_bucket(5), queue_depth_bucket(8));
  EXPECT_EQ(queue_depth_bucket(9), queue_depth_bucket(16));
  EXPECT_NE(queue_depth_bucket(8), queue_depth_bucket(9));
  EXPECT_EQ(queue_depth_bucket(-3), 0);
}

}  // namespace
}  // namespace hidp::partition
