// Model-zoo fidelity tests: layer counts, published FLOPs and parameter
// sizes, output shapes, and paper accuracy metadata.
#include <gtest/gtest.h>

#include "dnn/zoo/zoo.hpp"

namespace hidp::dnn::zoo {
namespace {

TEST(Zoo, AllModelsBuildAndValidate) {
  for (const auto id : all_models()) {
    const DnnGraph g = build_model(id);
    EXPECT_FALSE(g.empty());
    g.check_invariants();
    EXPECT_EQ(g.output_shape(), (Shape{1000, 1, 1})) << model_name(id);
  }
}

struct FlopsSpec {
  ModelId id;
  double gflops;       // published forward FLOPs (2 per MAC)
  double weights_mb;   // published parameter size (float32)
};

class ZooFidelity : public ::testing::TestWithParam<FlopsSpec> {};

TEST_P(ZooFidelity, MatchesPublishedNumbers) {
  const FlopsSpec spec = GetParam();
  const DnnGraph g = build_model(spec.id);
  EXPECT_NEAR(g.total_flops() / 1e9, spec.gflops, spec.gflops * 0.06) << g.name();
  EXPECT_NEAR(static_cast<double>(g.total_weight_bytes()) / 1e6, spec.weights_mb,
              spec.weights_mb * 0.06)
      << g.name();
}

INSTANTIATE_TEST_SUITE_P(
    PublishedNumbers, ZooFidelity,
    ::testing::Values(FlopsSpec{ModelId::kEfficientNetB0, 0.78, 21.2},
                      FlopsSpec{ModelId::kInceptionV3, 11.4, 95.3},
                      FlopsSpec{ModelId::kResNet152, 23.1, 240.8},
                      FlopsSpec{ModelId::kVgg19, 39.3, 574.7}));

TEST(Zoo, InputResolutions) {
  EXPECT_EQ(build_model(ModelId::kInceptionV3).input_shape(), (Shape{3, 299, 299}));
  EXPECT_EQ(build_model(ModelId::kResNet152).input_shape(), (Shape{3, 224, 224}));
  EXPECT_EQ(build_model(ModelId::kVgg19).input_shape(), (Shape{3, 224, 224}));
  EXPECT_EQ(build_model(ModelId::kEfficientNetB0).input_shape(), (Shape{3, 224, 224}));
}

TEST(Zoo, ResNet152Structure) {
  const DnnGraph g = build_resnet152();
  // 1 + (3+8+36+3)*~4 conv layers; exact: 155 convs + 50 adds + aux layers.
  int convs = 0, adds = 0;
  for (const Layer& l : g.layers()) {
    convs += l.kind == LayerKind::kConv2D ? 1 : 0;
    adds += l.kind == LayerKind::kAdd ? 1 : 0;
  }
  EXPECT_EQ(adds, 50);
  EXPECT_EQ(convs, 155);  // 151 block convs + 4 projections... (3*50+4+1)
}

TEST(Zoo, Vgg19Structure) {
  const DnnGraph g = build_vgg19();
  int convs = 0, dense = 0, pools = 0;
  for (const Layer& l : g.layers()) {
    convs += l.kind == LayerKind::kConv2D ? 1 : 0;
    dense += l.kind == LayerKind::kDense ? 1 : 0;
    pools += l.kind == LayerKind::kMaxPool2D ? 1 : 0;
  }
  EXPECT_EQ(convs, 16);
  EXPECT_EQ(dense, 3);
  EXPECT_EQ(pools, 5);
}

TEST(Zoo, InceptionUsesAsymmetricKernels) {
  const DnnGraph g = build_inception_v3();
  int asymmetric = 0;
  for (const Layer& l : g.layers()) {
    if (l.kind == LayerKind::kConv2D && l.params.kernel_w > 0 &&
        l.params.kernel_w != l.params.kernel) {
      ++asymmetric;
    }
  }
  EXPECT_GE(asymmetric, 20);  // the factorised 1x7/7x1 and 1x3/3x1 convs
}

TEST(Zoo, EfficientNetUsesDepthwiseAndSE) {
  const DnnGraph g = build_efficientnet_b0();
  int dw = 0, se = 0;
  for (const Layer& l : g.layers()) {
    dw += l.kind == LayerKind::kDepthwiseConv2D ? 1 : 0;
    se += l.kind == LayerKind::kSqueezeExcite ? 1 : 0;
  }
  EXPECT_EQ(dw, 16);  // one per MBConv block
  EXPECT_EQ(se, 16);
}

TEST(Zoo, AccuracyMetadataMatchesPaper) {
  EXPECT_DOUBLE_EQ(model_accuracy(ModelId::kVgg19).top1, 75.3);
  EXPECT_DOUBLE_EQ(model_accuracy(ModelId::kVgg19).top5, 89.7);
  EXPECT_DOUBLE_EQ(model_accuracy(ModelId::kEfficientNetB0).top1, 77.1);
  EXPECT_DOUBLE_EQ(model_accuracy(ModelId::kEfficientNetB0).top5, 92.25);
  EXPECT_DOUBLE_EQ(model_accuracy(ModelId::kResNet152).top1, 78.6);
  EXPECT_DOUBLE_EQ(model_accuracy(ModelId::kInceptionV3).top1, 80.9);
}

TEST(Zoo, NamesMatchPaperLabels) {
  EXPECT_EQ(model_name(ModelId::kEfficientNetB0), "EfficientNetB0");
  EXPECT_EQ(model_name(ModelId::kInceptionV3), "InceptionNetV3");
  EXPECT_EQ(model_name(ModelId::kResNet152), "ResNet152");
  EXPECT_EQ(model_name(ModelId::kVgg19), "VGG-19");
}

TEST(Zoo, ReducedResolutionBuilds) {
  // The equivalence tests run the zoo at reduced resolutions.
  const DnnGraph g = build_efficientnet_b0(64, 10);
  EXPECT_EQ(g.input_shape(), (Shape{3, 64, 64}));
  EXPECT_EQ(g.output_shape(), (Shape{10, 1, 1}));
  const DnnGraph v = build_vgg19(64, 17);
  EXPECT_EQ(v.output_shape(), (Shape{17, 1, 1}));
}

TEST(Zoo, FourModelsInPresentationOrder) {
  const auto ids = all_models();
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], ModelId::kEfficientNetB0);
  EXPECT_EQ(ids[3], ModelId::kVgg19);
}

}  // namespace
}  // namespace hidp::dnn::zoo
