// Unit tests for cut-point analysis (block boundaries for model partitioning).
#include <gtest/gtest.h>

#include "dnn/cut_analysis.hpp"
#include "dnn/zoo/zoo.hpp"

namespace hidp::dnn {
namespace {

DnnGraph chain_graph() {
  DnnGraph g("chain");
  int x = g.add_input(3, 8, 8);
  x = g.conv(x, 4, 3, 1, true, Activation::kRelu, "c1");
  x = g.conv(x, 4, 3, 1, true, Activation::kRelu, "c2");
  x = g.conv(x, 4, 3, 1, true, Activation::kRelu, "c3");
  return g;
}

DnnGraph residual_graph() {
  DnnGraph g("residual");
  int x = g.add_input(3, 8, 8);
  x = g.conv(x, 4, 3, 1, true, Activation::kRelu, "c1");   // 1
  int a = g.conv(x, 4, 3, 1, true, Activation::kNone, "c2");  // 2
  g.add({a, x}, Activation::kRelu, "res");                  // 3
  return g;
}

TEST(CutAnalysis, ChainHasAllCleanCuts) {
  const DnnGraph g = chain_graph();
  const auto cuts = clean_cut_positions(g);
  EXPECT_EQ(cuts, (std::vector<int>{1, 2, 3}));
}

TEST(CutAnalysis, ResidualEdgeBlocksInteriorCut) {
  const DnnGraph g = residual_graph();
  // Cut at 2 crosses both c1's output (consumed by add) and the input of
  // c2... c1 output crosses twice but counts once; crossing producers at 2:
  // layer 1 only (feeds both 2 and 3). So it is clean. Cut at 3: producers
  // 1 and 2 cross -> not clean.
  const auto all = analyze_cuts(g);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_TRUE(all[0].clean());   // position 1
  EXPECT_TRUE(all[1].clean());   // position 2 (single producer: layer 1)
  EXPECT_FALSE(all[2].clean());  // position 3 (producers 1 and 2)
}

TEST(CutAnalysis, BytesCountDistinctProducersOnce) {
  const DnnGraph g = residual_graph();
  // At position 2 the only crossing producer is layer 1 (consumed by both
  // layer 2 and layer 3) -> bytes = one tensor, not two.
  EXPECT_EQ(cut_bytes(g, 2), g.output_bytes(1));
}

TEST(CutAnalysis, BoundaryPositionsReturnZero) {
  const DnnGraph g = chain_graph();
  EXPECT_EQ(cut_bytes(g, 0), 0);
  EXPECT_EQ(cut_bytes(g, static_cast<int>(g.size())), 0);
}

TEST(CutAnalysis, PrefixFlopsMonotone) {
  const DnnGraph g = chain_graph();
  const auto prefix = prefix_flops(g);
  ASSERT_EQ(prefix.size(), g.size() + 1);
  for (std::size_t i = 1; i < prefix.size(); ++i) EXPECT_GE(prefix[i], prefix[i - 1]);
  EXPECT_DOUBLE_EQ(prefix.back(), g.total_flops());
}

TEST(CutAnalysis, CutBytesMatchesAnalyzeCuts) {
  const DnnGraph g = zoo::build_efficientnet_b0(64, 10);
  const auto cuts = analyze_cuts(g);
  for (std::size_t i = 0; i < cuts.size(); i += 7) {
    EXPECT_EQ(cuts[i].bytes, cut_bytes(g, cuts[i].position));
  }
}

TEST(CutAnalysis, ZooModelsHaveUsableCleanCuts) {
  for (const auto id : zoo::all_models()) {
    const DnnGraph g = zoo::build_model(id);
    const auto cuts = clean_cut_positions(g);
    // Every evaluation model offers multiple block boundaries.
    EXPECT_GE(cuts.size(), 10u) << zoo::model_name(id);
  }
}

TEST(CutAnalysis, InceptionBranchesAreNotCleanInside) {
  const DnnGraph g = zoo::build_inception_v3();
  const auto all = analyze_cuts(g);
  std::size_t dirty = 0;
  for (const auto& cut : all) dirty += cut.clean() ? 0 : 1;
  // Most interior positions of inception blocks cross several branch tensors.
  EXPECT_GT(dirty, all.size() / 2);
}

TEST(CutAnalysis, TinyGraphHasNoCuts) {
  DnnGraph g;
  g.add_input(1, 2, 2);
  EXPECT_TRUE(analyze_cuts(g).empty());
  EXPECT_TRUE(clean_cut_positions(g).empty());
}

}  // namespace
}  // namespace hidp::dnn
