// Monte-Carlo tree search over contiguous partitions (OmniBoost engine).
#include <gtest/gtest.h>

#include "baselines/mcts.hpp"
#include "partition/linear_partition.hpp"

namespace hidp::baselines {
namespace {

using partition::BoundaryCostFn;
using partition::PartitionObjective;
using partition::StageCostFn;

TEST(Mcts, FindsValidCover) {
  const StageCostFn stage = [](int b, int e, int w) { return (e - b) * (1.0 + w * 0.1); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.05; };
  util::Rng rng(1);
  const auto result = mcts_partition(6, 3, stage, boundary,
                                     PartitionObjective::kMinimizeSum, MctsConfig{}, rng);
  ASSERT_TRUE(result.valid());
  int cursor = 0;
  int last_worker = -1;
  for (const auto& block : result.blocks) {
    EXPECT_EQ(block.begin, cursor);
    EXPECT_GT(block.worker, last_worker);
    cursor = block.end;
    last_worker = block.worker;
  }
  EXPECT_EQ(cursor, 6);
}

TEST(Mcts, ApproachesDpOptimum) {
  util::Rng data_rng(7);
  std::vector<double> seg(8), rate(3);
  for (auto& v : seg) v = data_rng.uniform(0.2, 2.0);
  for (auto& v : rate) v = data_rng.uniform(0.5, 3.0);
  const StageCostFn stage = [&](int b, int e, int w) {
    double total = 0.0;
    for (int s = b; s < e; ++s) total += seg[static_cast<std::size_t>(s)];
    return total / rate[static_cast<std::size_t>(w)];
  };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.02; };
  const auto dp = partition::dp_linear_partition(8, 3, stage, boundary,
                                                 PartitionObjective::kMinimizeSum);
  MctsConfig config;
  config.iterations = 1500;
  config.estimator_noise = 0.0;
  util::Rng rng(3);
  const auto mcts = mcts_partition(8, 3, stage, boundary,
                                   PartitionObjective::kMinimizeSum, config, rng);
  ASSERT_TRUE(mcts.valid());
  // With a generous budget and no estimator noise, MCTS lands within 10%.
  EXPECT_LE(mcts.objective, dp.objective * 1.10 + 1e-9);
  EXPECT_GE(mcts.objective, dp.objective - 1e-9);
}

TEST(Mcts, DeterministicPerSeed) {
  const StageCostFn stage = [](int b, int e, int w) { return (e - b) / (w + 1.0); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.1; };
  util::Rng a(9), b(9);
  const auto ra = mcts_partition(5, 2, stage, boundary, PartitionObjective::kMinimizeSum,
                                 MctsConfig{}, a);
  const auto rb = mcts_partition(5, 2, stage, boundary, PartitionObjective::kMinimizeSum,
                                 MctsConfig{}, b);
  ASSERT_EQ(ra.blocks.size(), rb.blocks.size());
  for (std::size_t i = 0; i < ra.blocks.size(); ++i) {
    EXPECT_EQ(ra.blocks[i].worker, rb.blocks[i].worker);
    EXPECT_EQ(ra.blocks[i].begin, rb.blocks[i].begin);
  }
}

TEST(Mcts, NoiseDegradesButStaysValid) {
  const StageCostFn stage = [](int b, int e, int w) { return (e - b) / (w + 1.0); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.01; };
  MctsConfig config;
  config.estimator_noise = 0.3;  // sloppy estimator
  config.iterations = 200;
  util::Rng rng(11);
  const auto result = mcts_partition(7, 3, stage, boundary,
                                     PartitionObjective::kMinimizeBottleneck, config, rng);
  ASSERT_TRUE(result.valid());
  int covered = 0;
  for (const auto& block : result.blocks) covered += block.end - block.begin;
  EXPECT_EQ(covered, 7);
}

TEST(Mcts, BottleneckObjectiveReported) {
  const StageCostFn stage = [](int b, int e, int) { return static_cast<double>(e - b); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.0; };
  util::Rng rng(13);
  const auto result = mcts_partition(4, 4, stage, boundary,
                                     PartitionObjective::kMinimizeBottleneck, MctsConfig{},
                                     rng);
  ASSERT_TRUE(result.valid());
  EXPECT_LE(result.bottleneck_cost, result.sum_cost);
  EXPECT_NEAR(result.objective, result.bottleneck_cost, 1e-9);
}

TEST(Mcts, MaxBlockSpanRespected) {
  const StageCostFn stage = [](int b, int e, int) { return static_cast<double>(e - b); };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.0; };
  MctsConfig config;
  config.max_block_span = 2;
  util::Rng rng(17);
  const auto result = mcts_partition(6, 5, stage, boundary,
                                     PartitionObjective::kMinimizeSum, config, rng);
  ASSERT_TRUE(result.valid());
  for (const auto& block : result.blocks) EXPECT_LE(block.end - block.begin, 2);
}

TEST(Mcts, DegenerateInputsInvalid) {
  const StageCostFn stage = [](int, int, int) { return 1.0; };
  const BoundaryCostFn boundary = [](int, int, int) { return 0.0; };
  util::Rng rng(1);
  EXPECT_FALSE(mcts_partition(0, 3, stage, boundary, PartitionObjective::kMinimizeSum,
                              MctsConfig{}, rng)
                   .valid());
  EXPECT_FALSE(mcts_partition(3, 0, stage, boundary, PartitionObjective::kMinimizeSum,
                              MctsConfig{}, rng)
                   .valid());
}

}  // namespace
}  // namespace hidp::baselines
