// Unit tests for the reference tensor ops (hand-computed golden values).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace hidp::tensor {
namespace {

using dnn::Activation;
using dnn::Layer;
using dnn::LayerKind;

Layer conv_layer(int in_c, int out_c, int k, int stride, bool same,
                 Activation act = Activation::kNone) {
  Layer l;
  l.kind = LayerKind::kConv2D;
  l.params.kernel = k;
  l.params.stride = stride;
  l.params.same_padding = same;
  l.params.out_channels = out_c;
  l.params.use_bias = true;
  l.params.activation = act;
  l.output = dnn::infer_output_shape(l.kind, l.params, {dnn::Shape{in_c, 4, 4}});
  return l;
}

TEST(Tensor, IndexingRoundTrips) {
  Tensor t(2, 3, 4);
  t.at(1, 2, 3) = 42.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), 42.0f);
  EXPECT_EQ(t.size(), 24u);
}

TEST(Tensor, RowsExtractsBand) {
  Tensor t(1, 4, 2);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 2; ++x) t.at(0, y, x) = static_cast<float>(y * 10 + x);
  const Tensor band = t.rows(1, 3);
  EXPECT_EQ(band.height(), 2);
  EXPECT_FLOAT_EQ(band.at(0, 0, 1), 11.0f);
  EXPECT_FLOAT_EQ(band.at(0, 1, 0), 20.0f);
  EXPECT_THROW(t.rows(-1, 2), std::out_of_range);
}

TEST(Tensor, AllcloseAndDiff) {
  Tensor a(1, 1, 2), b(1, 1, 2);
  a.at(0, 0, 0) = 1.0f;
  b.at(0, 0, 0) = 1.0f + 1e-7f;
  EXPECT_TRUE(a.allclose(b));
  b.at(0, 0, 1) = 0.5f;
  EXPECT_FALSE(a.allclose(b));
  EXPECT_NEAR(a.max_abs_diff(b), 0.5, 1e-6);
}

TEST(RowWindow, GlobalAccessAndPadding) {
  Tensor t(1, 2, 2);
  t.at(0, 0, 0) = 7.0f;
  RowWindow w;
  w.data = t;
  w.row_offset = 3;
  w.full_height = 8;
  EXPECT_FLOAT_EQ(w.at_global(0, 3, 0), 7.0f);
  EXPECT_FLOAT_EQ(w.at_global(0, -1, 0), 0.0f);  // zero pad above tensor
  EXPECT_FLOAT_EQ(w.at_global(0, 8, 0), 0.0f);   // zero pad below tensor
  EXPECT_FLOAT_EQ(w.at_global(0, 3, -1), 0.0f);  // width pad
  EXPECT_THROW(w.at_global(0, 1, 0), std::logic_error);  // inside tensor, outside window
}

TEST(Ops, Conv1x1IsChannelMix) {
  // 1x1 conv with known weights: out = 2*in0 + 3*in1 + bias(1).
  Layer l = conv_layer(2, 1, 1, 1, true);
  LayerWeights w;
  w.conv = Tensor(1, 1, 2);
  w.conv.data()[0] = 2.0f;
  w.conv.data()[1] = 3.0f;
  w.bias = {1.0f};
  Tensor in(2, 4, 4);
  in.at(0, 1, 1) = 5.0f;
  in.at(1, 1, 1) = 7.0f;
  const Tensor out = conv2d_rows(l, RowWindow::full(in), w, 0, 4);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 2.0f * 5.0f + 3.0f * 7.0f + 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);  // bias only elsewhere
}

TEST(Ops, Conv3x3IdentityKernel) {
  // Kernel with 1 at centre reproduces the input (same padding).
  Layer l = conv_layer(1, 1, 3, 1, true);
  LayerWeights w;
  w.conv = Tensor(1, 1, 9);
  w.conv.data()[4] = 1.0f;  // centre tap
  w.bias = {0.0f};
  util::Rng rng(3);
  const Tensor in = Tensor::random(dnn::Shape{1, 4, 4}, rng);
  const Tensor out = conv2d_rows(l, RowWindow::full(in), w, 0, 4);
  EXPECT_LT(out.max_abs_diff(in), 1e-6);
}

TEST(Ops, ConvReluClampsNegative) {
  Layer l = conv_layer(1, 1, 1, 1, true, Activation::kRelu);
  LayerWeights w;
  w.conv = Tensor(1, 1, 1);
  w.conv.data()[0] = -1.0f;
  w.bias = {0.0f};
  Tensor in(1, 4, 4);
  in.at(0, 0, 0) = 3.0f;
  const Tensor out = conv2d_rows(l, RowWindow::full(in), w, 0, 4);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
}

TEST(Ops, DepthwiseKeepsChannelsSeparate) {
  Layer l;
  l.kind = LayerKind::kDepthwiseConv2D;
  l.params.kernel = 1;
  l.params.stride = 1;
  l.params.same_padding = true;
  l.params.use_bias = false;
  l.output = dnn::Shape{2, 2, 2};
  LayerWeights w;
  w.conv = Tensor(1, 1, 2);
  w.conv.data()[0] = 10.0f;
  w.conv.data()[1] = 100.0f;
  Tensor in(2, 2, 2);
  in.at(0, 0, 0) = 1.0f;
  in.at(1, 0, 0) = 1.0f;
  const Tensor out = depthwise_conv2d_rows(l, RowWindow::full(in), w, 0, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 100.0f);
}

TEST(Ops, MaxAndAvgPool) {
  Layer l;
  l.kind = LayerKind::kMaxPool2D;
  l.params.kernel = 2;
  l.params.stride = 2;
  l.output = dnn::Shape{1, 1, 1};
  Tensor in(1, 2, 2);
  in.at(0, 0, 0) = 1.0f;
  in.at(0, 0, 1) = 2.0f;
  in.at(0, 1, 0) = 3.0f;
  in.at(0, 1, 1) = 4.0f;
  EXPECT_FLOAT_EQ(pool2d_rows(l, RowWindow::full(in), 0, 1, true).at(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(pool2d_rows(l, RowWindow::full(in), 0, 1, false).at(0, 0, 0), 2.5f);
}

TEST(Ops, AvgPoolIgnoresPadding) {
  // 3x3 same avg pool at a corner averages only the valid 2x2 values
  // (count-based divisor, TF semantics).
  Layer l;
  l.kind = LayerKind::kAvgPool2D;
  l.params.kernel = 3;
  l.params.stride = 1;
  l.params.same_padding = true;
  l.output = dnn::Shape{1, 2, 2};
  Tensor in(1, 2, 2);
  in.at(0, 0, 0) = 4.0f;
  in.at(0, 0, 1) = 4.0f;
  in.at(0, 1, 0) = 4.0f;
  in.at(0, 1, 1) = 4.0f;
  const Tensor out = pool2d_rows(l, RowWindow::full(in), 0, 2, false);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);
}

TEST(Ops, BatchNormFolds) {
  Layer l;
  l.kind = LayerKind::kBatchNorm;
  l.output = dnn::Shape{1, 1, 1};
  LayerWeights w;
  w.bn_gamma = {2.0f};
  w.bn_beta = {1.0f};
  w.bn_mean = {3.0f};
  w.bn_var = {4.0f};
  Tensor in(1, 1, 1);
  in.at(0, 0, 0) = 5.0f;
  const Tensor out = batch_norm_rows(l, RowWindow::full(in), w, 0, 1);
  EXPECT_NEAR(out.at(0, 0, 0), 2.0f * (5.0f - 3.0f) / std::sqrt(4.0f + 1e-5f) + 1.0f, 1e-5);
}

TEST(Ops, AddAndConcat) {
  Layer add;
  add.kind = LayerKind::kAdd;
  add.output = dnn::Shape{1, 1, 1};
  Tensor a(1, 1, 1), b(1, 1, 1);
  a.at(0, 0, 0) = 2.0f;
  b.at(0, 0, 0) = 3.0f;
  const RowWindow wa = RowWindow::full(a), wb = RowWindow::full(b);
  EXPECT_FLOAT_EQ(add_rows(add, {&wa, &wb}, 0, 1).at(0, 0, 0), 5.0f);
  const Tensor cat = concat_rows({&wa, &wb}, 0, 1);
  EXPECT_EQ(cat.channels(), 2);
  EXPECT_FLOAT_EQ(cat.at(1, 0, 0), 3.0f);
}

TEST(Ops, GlobalAvgPoolAveragesAll) {
  Tensor in(1, 2, 2);
  in.at(0, 0, 0) = 1.0f;
  in.at(0, 1, 1) = 3.0f;
  EXPECT_FLOAT_EQ(global_avg_pool(in).at(0, 0, 0), 1.0f);
}

TEST(Ops, DenseMatvec) {
  Layer l;
  l.kind = LayerKind::kDense;
  l.params.out_channels = 2;
  l.output = dnn::Shape{2, 1, 1};
  LayerWeights w;
  w.dense = {1.0f, 2.0f, 3.0f, 4.0f};  // [out][in]
  w.bias = {0.5f, -0.5f};
  Tensor in(2, 1, 1);
  in.at(0, 0, 0) = 10.0f;
  in.at(1, 0, 0) = 20.0f;
  const Tensor out = dense(l, in, w);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f * 10 + 2.0f * 20 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 3.0f * 10 + 4.0f * 20 - 0.5f);
}

TEST(Ops, SoftmaxNormalises) {
  Tensor in(3, 1, 1);
  in.at(0, 0, 0) = 1.0f;
  in.at(1, 0, 0) = 2.0f;
  in.at(2, 0, 0) = 3.0f;
  const Tensor out = softmax(in);
  float total = 0.0f;
  for (int c = 0; c < 3; ++c) total += out.at(c, 0, 0);
  EXPECT_NEAR(total, 1.0f, 1e-6);
  EXPECT_GT(out.at(2, 0, 0), out.at(1, 0, 0));
}

TEST(Ops, SePartialSumsSplitAgreesWithWhole) {
  util::Rng rng(5);
  const Tensor in = Tensor::random(dnn::Shape{3, 8, 4}, rng);
  const RowWindow w = RowWindow::full(in);
  const auto whole = se_partial_sums(w, 0, 8);
  auto upper = se_partial_sums(w, 0, 3);
  const auto lower = se_partial_sums(w, 3, 8);
  for (std::size_t c = 0; c < whole.size(); ++c) {
    EXPECT_NEAR(upper[c] + lower[c], whole[c], 1e-9);
  }
}

TEST(Ops, ActivationsApplied) {
  Tensor t(1, 1, 3);
  t.at(0, 0, 0) = -1.0f;
  t.at(0, 0, 1) = 3.0f;
  t.at(0, 0, 2) = 9.0f;
  Tensor relu6 = t;
  apply_activation(relu6, Activation::kRelu6);
  EXPECT_FLOAT_EQ(relu6.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(relu6.at(0, 0, 1), 3.0f);
  EXPECT_FLOAT_EQ(relu6.at(0, 0, 2), 6.0f);
  Tensor sig = t;
  apply_activation(sig, Activation::kSigmoid);
  EXPECT_NEAR(sig.at(0, 0, 1), 1.0f / (1.0f + std::exp(-3.0f)), 1e-6);
}

}  // namespace
}  // namespace hidp::tensor
