// Execution engine: dispatch, contention, FSM phase charging, traces.
#include <gtest/gtest.h>

#include "dnn/zoo/zoo.hpp"
#include "runtime/engine.hpp"
#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

/// Deterministic strategy issuing one fixed compute task on (node 0, proc 0).
class FixedStrategy : public IStrategy {
 public:
  explicit FixedStrategy(double seconds, double phases_s = 0.0)
      : seconds_(seconds), phases_s_(phases_s) {}
  std::string name() const override { return "Fixed"; }
  Plan plan(const dnn::DnnGraph&, const ClusterSnapshot& snap) override {
    last_snapshot = snap;
    Plan p;
    p.strategy = name();
    p.leader = snap.leader;
    PlanTask t;
    t.kind = PlanTask::Kind::kCompute;
    t.node = 0;
    t.proc = 0;
    t.seconds = seconds_;
    t.flops = 1e9;
    p.tasks.push_back(t);
    p.phases.explore_s = phases_s_;
    p.nodes_used = 1;
    return p;
  }
  ClusterSnapshot last_snapshot;

 private:
  double seconds_;
  double phases_s_;
};

TEST(Engine, SingleRequestLatency) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.5);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({InferenceRequest{0, &model, 1.0}});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].arrival_s, 1.0);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 1.5);
  EXPECT_DOUBLE_EQ(records[0].latency_s(), 0.5);
  EXPECT_DOUBLE_EQ(engine.makespan_s(), 1.5);
}

TEST(Engine, PhasesDelayDispatch) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.5, 0.1);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({InferenceRequest{0, &model, 0.0}});
  EXPECT_DOUBLE_EQ(records[0].dispatch_s, 0.1);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.6);
}

TEST(Engine, ContentionSerialisesOnSharedProcessor) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({
      InferenceRequest{0, &model, 0.0},
      InferenceRequest{1, &model, 0.0},
      InferenceRequest{2, &model, 0.0},
  });
  ASSERT_EQ(records.size(), 3u);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 1.0);
  EXPECT_DOUBLE_EQ(records[1].finish_s, 2.0);
  EXPECT_DOUBLE_EQ(records[2].finish_s, 3.0);
}

TEST(Engine, QueueDepthVisibleToStrategy) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  engine.run({InferenceRequest{0, &model, 0.0}, InferenceRequest{1, &model, 0.1}});
  // The second request arrives while the first is still running.
  EXPECT_EQ(strategy.last_snapshot.queue_depth, 1);
}

TEST(Engine, TracesRecordComputeIntervals) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.25);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  engine.run({InferenceRequest{0, &model, 0.0}, InferenceRequest{1, &model, 0.0}});
  ASSERT_EQ(engine.traces().size(), 2u);
  EXPECT_DOUBLE_EQ(engine.traces()[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(engine.traces()[0].end_s, 0.25);
  EXPECT_DOUBLE_EQ(engine.traces()[1].start_s, 0.25);  // queued
  EXPECT_DOUBLE_EQ(engine.traces()[1].flops, 1e9);
}

TEST(Engine, RecordsSortedById) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({
      InferenceRequest{7, &model, 0.2},
      InferenceRequest{3, &model, 0.1},
  });
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, 3);
  EXPECT_EQ(records[1].id, 7);
}

TEST(Engine, RejectsNullModel) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  ExecutionEngine engine(cluster, strategy, 0);
  EXPECT_THROW(engine.run({InferenceRequest{0, nullptr, 0.0}}), std::invalid_argument);
}

TEST(Engine, RejectsBadLeader) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  EXPECT_THROW(ExecutionEngine(cluster, strategy, 9), std::invalid_argument);
}

TEST(Engine, EmptyPlanFinishesImmediately) {
  class EmptyStrategy : public IStrategy {
   public:
    std::string name() const override { return "Empty"; }
    Plan plan(const dnn::DnnGraph&, const ClusterSnapshot&) override { return Plan{}; }
  };
  Cluster cluster(platform::paper_cluster(2));
  EmptyStrategy strategy;
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({InferenceRequest{0, &model, 0.5}});
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.5);
}

TEST(Cluster, EnergyGrowsWithBusyTime) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  engine.run({InferenceRequest{0, &model, 0.0}});
  const double busy_energy = cluster.total_energy_j(1.0);
  // An idle cluster over the same horizon consumes strictly less.
  Cluster idle(platform::paper_cluster(2));
  EXPECT_GT(busy_energy, idle.total_energy_j(1.0));
}

TEST(Cluster, NodeEnergyBreakdownConsistent) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(2.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  engine.run({InferenceRequest{0, &model, 0.0}});
  const auto e = cluster.node_energy(0, 2.0);
  EXPECT_GT(e.active_j, 0.0);
  EXPECT_DOUBLE_EQ(cluster.busy_s(0, 0), 2.0);
  double total = 0.0;
  for (std::size_t n = 0; n < cluster.size(); ++n) total += cluster.node_energy(n, 2.0).total_j();
  EXPECT_NEAR(total, cluster.total_energy_j(2.0), 1e-9);
}

}  // namespace
}  // namespace hidp::runtime
