// Execution engine: dispatch, contention, FSM phase charging, traces.
#include <gtest/gtest.h>

#include "dnn/zoo/zoo.hpp"
#include "runtime/engine.hpp"
#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

/// Deterministic strategy issuing `tasks` fixed compute tasks on
/// (node 0, proc 0).
class FixedStrategy : public IStrategy {
 public:
  explicit FixedStrategy(double seconds, double phases_s = 0.0, int tasks = 1)
      : seconds_(seconds), phases_s_(phases_s), tasks_(tasks) {}
  std::string name() const override { return "Fixed"; }
  PlanResult plan(const PlanRequest& request) override {
    last_snapshot = request.snapshot;
    Plan p;
    p.strategy = name();
    p.leader = request.snapshot.leader;
    for (int i = 0; i < tasks_; ++i) {
      PlanTask t;
      t.kind = PlanTask::Kind::kCompute;
      t.node = 0;
      t.proc = 0;
      t.seconds = seconds_;
      t.flops = 1e9;
      if (i > 0) t.deps = {i - 1};
      p.tasks.push_back(t);
    }
    p.phases.explore_s = phases_s_;
    p.nodes_used = 1;
    return PlanResult{std::move(p), false};
  }
  ClusterSnapshot last_snapshot;

 private:
  double seconds_;
  double phases_s_;
  int tasks_;
};

TEST(Engine, SingleRequestLatency) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.5);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({InferenceRequest{0, &model, 1.0}});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].arrival_s, 1.0);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 1.5);
  EXPECT_DOUBLE_EQ(records[0].latency_s(), 0.5);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  EXPECT_DOUBLE_EQ(engine.makespan_s(), 1.5);
}

TEST(Engine, PhasesDelayDispatch) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.5, 0.1);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({InferenceRequest{0, &model, 0.0}});
  EXPECT_DOUBLE_EQ(records[0].dispatch_s, 0.1);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.6);
}

TEST(Engine, ContentionSerialisesOnSharedProcessor) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({
      InferenceRequest{0, &model, 0.0},
      InferenceRequest{1, &model, 0.0},
      InferenceRequest{2, &model, 0.0},
  });
  ASSERT_EQ(records.size(), 3u);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 1.0);
  EXPECT_DOUBLE_EQ(records[1].finish_s, 2.0);
  EXPECT_DOUBLE_EQ(records[2].finish_s, 3.0);
}

TEST(Engine, QueueDepthVisibleToStrategy) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  engine.run({InferenceRequest{0, &model, 0.0}, InferenceRequest{1, &model, 0.1}});
  // The second request arrives while the first is still running.
  EXPECT_EQ(strategy.last_snapshot.queue_depth, 1);
}

TEST(Engine, DeadlineMissStampedOnLateFinish) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  InferenceRequest late{0, &model, 0.0};
  late.deadline_s = 0.5;  // the 1 s task can only miss
  InferenceRequest fine{1, &model, 2.0};
  fine.deadline_s = 4.0;
  const auto records = engine.run({late, fine});
  EXPECT_EQ(records[0].outcome, RequestOutcome::kDeadlineMiss);
  EXPECT_EQ(records[1].outcome, RequestOutcome::kCompleted);
}

TEST(Engine, TracesRecordComputeIntervals) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.25);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  engine.run({InferenceRequest{0, &model, 0.0}, InferenceRequest{1, &model, 0.0}});
  ASSERT_EQ(engine.traces().size(), 2u);
  EXPECT_DOUBLE_EQ(engine.traces()[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(engine.traces()[0].end_s, 0.25);
  EXPECT_DOUBLE_EQ(engine.traces()[1].start_s, 0.25);  // queued
  EXPECT_DOUBLE_EQ(engine.traces()[1].flops, 1e9);
}

TEST(Engine, TraceCapacityZeroDisablesTracing) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.25, 0.0, /*tasks=*/3);
  ExecutionEngine engine(cluster, strategy, 0);
  engine.set_trace_capacity(0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records =
      engine.run({InferenceRequest{0, &model, 0.0}, InferenceRequest{1, &model, 0.0}});
  EXPECT_TRUE(engine.traces().empty());
  // Execution itself is unaffected: both requests still complete (their
  // chained tasks interleave on the shared FIFO processor).
  EXPECT_DOUBLE_EQ(records[0].finish_s, 1.25);
  EXPECT_DOUBLE_EQ(records[1].finish_s, 1.5);
}

TEST(Engine, TraceCapHitMidRunStopsCollection) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1, 0.0, /*tasks=*/2);
  ExecutionEngine engine(cluster, strategy, 0);
  engine.set_trace_capacity(3);  // 3 requests x 2 tasks = 6 would overflow
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({
      InferenceRequest{0, &model, 0.0},
      InferenceRequest{1, &model, 0.0},
      InferenceRequest{2, &model, 0.0},
  });
  EXPECT_EQ(engine.traces().size(), 3u);
  // The cap hit mid-run (between tasks of request 1): the retained prefix
  // is still time-ordered and complete execution was unaffected.
  for (std::size_t i = 1; i < engine.traces().size(); ++i) {
    EXPECT_GE(engine.traces()[i].start_s, engine.traces()[i - 1].start_s);
  }
  EXPECT_EQ(records.size(), 3u);
  for (const auto& r : records) EXPECT_EQ(r.outcome, RequestOutcome::kCompleted);
}

TEST(Engine, RecordsSortedById) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({
      InferenceRequest{7, &model, 0.2},
      InferenceRequest{3, &model, 0.1},
  });
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, 3);
  EXPECT_EQ(records[1].id, 7);
}

TEST(Engine, RecordsSortedByIdUnderShuffledArrivalOrder) {
  // The id-sorted invariant must hold regardless of arrival order, id
  // gaps, or submission order (ids here are neither contiguous nor sorted
  // by arrival).
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.05);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({
      InferenceRequest{42, &model, 0.30},
      InferenceRequest{-3, &model, 0.20},
      InferenceRequest{7, &model, 0.00},
      InferenceRequest{19, &model, 0.10},
  });
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].id, records[i].id);
  }
}

TEST(Engine, RejectsNullModel) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  ExecutionEngine engine(cluster, strategy, 0);
  EXPECT_THROW(engine.run({InferenceRequest{0, nullptr, 0.0}}), std::invalid_argument);
}

TEST(Engine, RejectsBadLeader) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  EXPECT_THROW(ExecutionEngine(cluster, strategy, 9), std::invalid_argument);
}

TEST(Engine, EmptyPlanFinishesImmediately) {
  class EmptyStrategy : public IStrategy {
   public:
    std::string name() const override { return "Empty"; }
    PlanResult plan(const PlanRequest&) override { return PlanResult{}; }
  };
  Cluster cluster(platform::paper_cluster(2));
  EmptyStrategy strategy;
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  const auto records = engine.run({InferenceRequest{0, &model, 0.5}});
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.5);
}

TEST(Engine, MidTaskNodeDeathFailsAtFailureInstantWithPartialFlops) {
  // Three chained 0.4 s tasks on node 0; the node dies at t=0.6, one task
  // done and the second mid-execution. The request must fail *then* — not
  // complete at t=1.2 on a ghost node — keeping only the finished task's
  // FLOPs.
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.4, 0.0, /*tasks=*/3);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  cluster.simulator().schedule_at(0.6, [&] { cluster.set_node_available(0, false); });
  const auto records = engine.run({InferenceRequest{0, &model, 0.0}});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kFailed);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.6);
  EXPECT_DOUBLE_EQ(records[0].flops, 1e9);  // only the completed first task
}

TEST(Engine, DeathOfUntouchedNodeLeavesRequestAlone) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.5);  // plans on node 0 only
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  cluster.simulator().schedule_at(0.2, [&] { cluster.set_node_available(1, false); });
  const auto records = engine.run({InferenceRequest{0, &model, 0.0}});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.5);
}

TEST(Engine, NodeDeathDuringPhaseDelayFailsBeforeFirstTask) {
  // The node dies during the FSM phase delay, after planning but before
  // the first task starts: the request is already registered, so it fails
  // at the death instant instead of executing on the ghost (or throwing on
  // transfer) at dispatch time.
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.5, /*phases_s=*/0.3);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  cluster.simulator().schedule_at(0.1, [&] { cluster.set_node_available(0, false); });
  const auto records = engine.run({InferenceRequest{0, &model, 0.0}});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kFailed);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.1);  // the death instant
  EXPECT_DOUBLE_EQ(records[0].flops, 0.0);
}

TEST(Engine, NodeDeadAtTaskStartFailsInsteadOfExecuting) {
  // The planned node dies *and never registers with the run's failure
  // sweep*: here, because it recovers planning-wise but the plan is stale —
  // simulate by killing the node after the run would fire only via the
  // start-task availability check: node down at 0.1, up before the
  // observer sweep would matter for a freshly-dispatched request at 0.2.
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.5);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  // The strategy plans on node 0 unconditionally, ignoring availability —
  // a stale/buggy plan. Node 0 is already down when the request arrives:
  // no churn event fires while the run is active, so only the start-task
  // check can catch it.
  cluster.set_node_available(0, false);
  const auto records = engine.run({InferenceRequest{0, &model, 0.2}});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kFailed);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 0.2);
  EXPECT_DOUBLE_EQ(records[0].flops, 0.0);
}

TEST(Engine, FailureCallbackFiresInsteadOfDoneAndAllowsReplan) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.5);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  RequestRecord record;
  record.id = 7;
  int done_calls = 0;
  int failed_calls = 0;
  cluster.simulator().schedule_at(0.0, [&] {
    engine.execute(RequestSpec{7, &model, 0.0}, record, 0, [&] { ++done_calls; },
                   [&] { ++failed_calls; });
  });
  cluster.simulator().schedule_at(0.2, [&] { cluster.set_node_available(0, false); });
  cluster.simulator().run();
  EXPECT_EQ(done_calls, 0);
  EXPECT_EQ(failed_calls, 1);
  EXPECT_EQ(record.outcome, RequestOutcome::kFailed);
  EXPECT_DOUBLE_EQ(record.finish_s, 0.2);
  EXPECT_EQ(engine.in_flight(), 0);
}

TEST(Cluster, EnergyGrowsWithBusyTime) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  engine.run({InferenceRequest{0, &model, 0.0}});
  const double busy_energy = cluster.total_energy_j(1.0);
  // An idle cluster over the same horizon consumes strictly less.
  Cluster idle(platform::paper_cluster(2));
  EXPECT_GT(busy_energy, idle.total_energy_j(1.0));
}

TEST(Cluster, NodeEnergyBreakdownConsistent) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(2.0);
  ExecutionEngine engine(cluster, strategy, 0);
  dnn::DnnGraph model = dnn::zoo::build_efficientnet_b0(32, 4);
  engine.run({InferenceRequest{0, &model, 0.0}});
  const auto e = cluster.node_energy(0, 2.0);
  EXPECT_GT(e.active_j, 0.0);
  EXPECT_DOUBLE_EQ(cluster.busy_s(0, 0), 2.0);
  double total = 0.0;
  for (std::size_t n = 0; n < cluster.size(); ++n) total += cluster.node_energy(n, 2.0).total_j();
  EXPECT_NEAR(total, cluster.total_energy_j(2.0), 1e-9);
}

}  // namespace
}  // namespace hidp::runtime
