// InferenceService lifecycle: batch equivalence, admission control, load
// shedding under overload, QoS deadlines, and the pluggable arrival
// sources (replay, Poisson, closed-loop clients).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/hidp_strategy.hpp"
#include "runtime/fleet.hpp"
#include "runtime/metrics.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"

namespace hidp::runtime {
namespace {

using dnn::zoo::ModelId;

/// Deterministic strategy: one compute task of `seconds` on (node 0, proc 0).
class FixedStrategy : public IStrategy {
 public:
  explicit FixedStrategy(double seconds) : seconds_(seconds) {}
  std::string name() const override { return "Fixed"; }
  PlanResult plan(const PlanRequest& request) override {
    Plan p;
    p.strategy = name();
    p.leader = request.snapshot.leader;
    PlanTask t;
    t.kind = PlanTask::Kind::kCompute;
    t.node = 0;
    t.proc = 0;
    t.seconds = seconds_;
    t.flops = 1e9;
    p.tasks.push_back(t);
    p.nodes_used = 1;
    return PlanResult{std::move(p), false};
  }

 private:
  double seconds_;
};

void expect_bit_identical(const std::vector<RequestRecord>& a,
                          const std::vector<RequestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].strategy, b[i].strategy);
    EXPECT_EQ(a[i].mode, b[i].mode);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].nodes_used, b[i].nodes_used);
    // Bit-identical timing, not "close": the service with unlimited
    // admission must be the same computation as the batch path.
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].dispatch_s, b[i].dispatch_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].finish_s, b[i].finish_s) << "request " << a[i].id;
    EXPECT_EQ(a[i].flops, b[i].flops) << "request " << a[i].id;
  }
}

/// Paper workloads replayed through both serving surfaces under HiDP with
/// identical seeds: records must match bit for bit.
TEST(ServiceEquivalence, ReproducesBatchRunOnPaperWorkloads) {
  ModelSet models;
  util::Rng mix_rng_a(21), mix_rng_b(21);
  const std::vector<ModelId> mix{ModelId::kEfficientNetB0, ModelId::kVgg19};
  const std::vector<std::vector<RequestSpec>> workloads_a{
      periodic_stream(models.graph(ModelId::kResNet152), 8, 0.2),
      staggered_streams(models, dnn::zoo::all_models(), 0.5, 3, 0.25),
      mixed_stream(models, mix, 10, 0.05, mix_rng_a),
  };
  const std::vector<std::vector<RequestSpec>> workloads_b{
      periodic_stream(models.graph(ModelId::kResNet152), 8, 0.2),
      staggered_streams(models, dnn::zoo::all_models(), 0.5, 3, 0.25),
      mixed_stream(models, mix, 10, 0.05, mix_rng_b),
  };
  for (std::size_t w = 0; w < workloads_a.size(); ++w) {
    Cluster batch_cluster(platform::paper_cluster());
    core::HidpStrategy batch_strategy;
    ExecutionEngine engine(batch_cluster, batch_strategy, 1);
    const auto batch_records = engine.run(workloads_a[w]);

    Cluster service_cluster(platform::paper_cluster());
    core::HidpStrategy service_strategy;
    InferenceService service(service_cluster, service_strategy, 1);  // unlimited admission
    ReplayArrivals arrivals(workloads_b[w]);
    service.attach(&arrivals);
    const auto service_records = service.run();

    expect_bit_identical(batch_records, service_records);
    EXPECT_EQ(service.makespan_s(), engine.makespan_s()) << "workload " << w;
    EXPECT_EQ(service.stats().completed, workloads_a[w].size());
    EXPECT_EQ(service.stats().rejected, 0u);
    EXPECT_EQ(service.stats().dropped, 0u);
  }
}

/// A 1-shard fleet with pass-through routing is the same computation as a
/// bare InferenceService: records, traces and stats must match bit for bit
/// on the paper workloads.
TEST(ServiceEquivalence, OneShardFleetIsBitIdenticalToBareService) {
  ModelSet models;
  util::Rng mix_rng_a(21), mix_rng_b(21);
  const std::vector<ModelId> mix{ModelId::kEfficientNetB0, ModelId::kVgg19};
  const std::vector<std::vector<RequestSpec>> workloads_a{
      periodic_stream(models.graph(ModelId::kResNet152), 8, 0.2),
      staggered_streams(models, dnn::zoo::all_models(), 0.5, 3, 0.25),
      mixed_stream(models, mix, 10, 0.05, mix_rng_a),
  };
  const std::vector<std::vector<RequestSpec>> workloads_b{
      periodic_stream(models.graph(ModelId::kResNet152), 8, 0.2),
      staggered_streams(models, dnn::zoo::all_models(), 0.5, 3, 0.25),
      mixed_stream(models, mix, 10, 0.05, mix_rng_b),
  };
  for (std::size_t w = 0; w < workloads_a.size(); ++w) {
    Cluster bare_cluster(platform::paper_cluster());
    core::HidpStrategy bare_strategy;
    InferenceService bare(bare_cluster, bare_strategy, 1);
    ReplayArrivals bare_arrivals(workloads_a[w]);
    bare.attach(&bare_arrivals);
    const auto bare_records = bare.run();

    Cluster fleet_cluster(platform::paper_cluster());
    core::HidpStrategy fleet_strategy;
    RoundRobinRouting routing;
    ServiceFleet fleet(fleet_cluster, {{&fleet_strategy, {}, 1, ServiceOptions{}}}, routing);
    ReplayArrivals fleet_arrivals(workloads_b[w]);
    fleet.attach(&fleet_arrivals);
    const auto fleet_records = fleet.run();

    expect_bit_identical(bare_records, fleet_records);
    EXPECT_EQ(fleet.makespan_s(), bare.makespan_s()) << "workload " << w;

    // Traces too: the scoped engine must schedule the same tasks at the
    // same instants.
    const auto& bare_traces = bare.traces();
    const auto& fleet_traces = fleet.shard(0).traces();
    ASSERT_EQ(bare_traces.size(), fleet_traces.size()) << "workload " << w;
    for (std::size_t i = 0; i < bare_traces.size(); ++i) {
      EXPECT_EQ(bare_traces[i].request, fleet_traces[i].request);
      EXPECT_EQ(bare_traces[i].node, fleet_traces[i].node);
      EXPECT_EQ(bare_traces[i].proc, fleet_traces[i].proc);
      EXPECT_EQ(bare_traces[i].start_s, fleet_traces[i].start_s);
      EXPECT_EQ(bare_traces[i].end_s, fleet_traces[i].end_s);
    }

    const ServiceStats fleet_stats = fleet.stats();
    EXPECT_EQ(fleet_stats.submitted, bare.stats().submitted);
    EXPECT_EQ(fleet_stats.completed, bare.stats().completed);
    EXPECT_EQ(fleet_stats.rejected, 0u);
    EXPECT_EQ(fleet_stats.dropped, 0u);
    EXPECT_EQ(fleet_stats.stolen_in, 0u);
  }
}

TEST(ServiceEquivalence, SubmitMatchesAttachedReplay) {
  ModelSet models;
  const auto requests = periodic_stream(models.graph(ModelId::kInceptionV3), 6, 0.3);
  Cluster cluster_a(platform::paper_cluster());
  core::HidpStrategy strategy_a;
  InferenceService direct(cluster_a, strategy_a, 1);
  for (const auto& request : requests) {
    const RequestHandle handle = direct.submit(request);
    EXPECT_TRUE(handle.valid());
    EXPECT_EQ(handle.id, request.id);
  }
  Cluster cluster_b(platform::paper_cluster());
  core::HidpStrategy strategy_b;
  InferenceService attached(cluster_b, strategy_b, 1);
  ReplayArrivals arrivals(requests);
  attached.attach(&arrivals);
  expect_bit_identical(direct.run(), attached.run());
}

TEST(Service, BoundedQueueSustainsThroughputWhereBatchDiverges) {
  // Open-loop overload: 0.2 s of service demand arriving every 0.02 s on
  // one processor — 10x oversubscribed.
  ModelSet models;
  const auto overload = periodic_stream(models.graph(ModelId::kEfficientNetB0), 100, 0.02);

  // Batch path (and equivalently an unlimited service): every request is
  // dispatched on arrival, so waiting time grows linearly — latency
  // diverges with position in the stream.
  Cluster batch_cluster(platform::paper_cluster(2));
  FixedStrategy batch_strategy(0.2);
  ExecutionEngine engine(batch_cluster, batch_strategy, 0);
  const auto batch_metrics = summarize_run(engine.run(overload), batch_cluster);
  EXPECT_GT(batch_metrics.max_latency_s, 15.0);  // ~100 * 0.2 s of backlog

  // Bounded service: one request in flight, at most 4 pending, shed the
  // rest. Queue depth stays bounded, so does completed-request latency,
  // and throughput still saturates the processor.
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.2);
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_pending = 4;
  options.shed_policy = LoadShedPolicy::kRejectNewest;
  InferenceService service(cluster, strategy, 0, options);
  ReplayArrivals arrivals(overload);
  service.attach(&arrivals);
  const auto records = service.run();
  const auto metrics = summarize_run(records, cluster);

  EXPECT_EQ(service.stats().peak_pending, 4u);
  EXPECT_EQ(service.stats().peak_in_flight, 1u);
  EXPECT_GT(service.stats().rejected, 0u);
  EXPECT_EQ(service.stats().completed + service.stats().rejected + service.stats().dropped,
            100u);
  // Completed-request latency is bounded by the queue: at most
  // (pending cap + 1) service times of waiting + 1 of service.
  EXPECT_LE(metrics.max_latency_s, 6.0 * 0.2 + 1e-9);
  EXPECT_LT(metrics.max_latency_s, batch_metrics.max_latency_s / 10.0);
  // Throughput is sustained: the processor never idles while work is
  // pending, so completed ~= makespan / service time.
  EXPECT_GT(static_cast<double>(service.stats().completed),
            0.95 * metrics.makespan_s / 0.2);
  // The diverging batch path completes no more inferences per unit time.
  EXPECT_GE(metrics.throughput_per_100s, 0.95 * batch_metrics.throughput_per_100s);
}

TEST(Service, RejectNewestPrefersHigherQos) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_pending = 1;
  InferenceService service(cluster, strategy, 0, options);
  RequestSpec running{0, &model, 0.0};
  RequestSpec queued{1, &model, 0.1, QosClass::kBestEffort};
  RequestSpec standard_late{2, &model, 0.2};  // queue full, same-or-lower rank below it? no: higher
  RequestSpec interactive{3, &model, 0.3, QosClass::kInteractive};
  service.submit(running);
  service.submit(queued);
  service.submit(standard_late);   // displaces the best-effort request
  service.submit(interactive);     // displaces the standard request
  const auto records = service.run();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(records[1].outcome, RequestOutcome::kDropped);   // bumped by #2
  EXPECT_EQ(records[2].outcome, RequestOutcome::kDropped);   // bumped by #3
  EXPECT_EQ(records[3].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(service.stats().dropped, 2u);
  EXPECT_EQ(service.stats().rejected, 0u);
  // Per-class slices attribute each outcome to its request's QoS class.
  EXPECT_EQ(service.stats().of(QosClass::kBestEffort).submitted, 1u);
  EXPECT_EQ(service.stats().of(QosClass::kBestEffort).dropped, 1u);
  EXPECT_EQ(service.stats().of(QosClass::kStandard).submitted, 2u);
  EXPECT_EQ(service.stats().of(QosClass::kStandard).completed, 1u);
  EXPECT_EQ(service.stats().of(QosClass::kStandard).dropped, 1u);
  EXPECT_EQ(service.stats().of(QosClass::kInteractive).completed, 1u);
}

TEST(Service, RejectNewestRefusesEqualQos) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_pending = 1;
  InferenceService service(cluster, strategy, 0, options);
  service.submit(RequestSpec{0, &model, 0.0});
  service.submit(RequestSpec{1, &model, 0.1});
  service.submit(RequestSpec{2, &model, 0.2});  // equal class: rejected
  const auto records = service.run();
  EXPECT_EQ(records[2].outcome, RequestOutcome::kRejected);
  EXPECT_EQ(records[2].finish_s, 0.2);  // terminal at arrival, never ran
  EXPECT_DOUBLE_EQ(records[2].flops, 0.0);
  EXPECT_EQ(records[1].outcome, RequestOutcome::kCompleted);
}

TEST(Service, DropOldestKeepsFreshRequests) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_pending = 1;
  options.shed_policy = LoadShedPolicy::kDropOldest;
  InferenceService service(cluster, strategy, 0, options);
  service.submit(RequestSpec{0, &model, 0.0});
  service.submit(RequestSpec{1, &model, 0.1});
  service.submit(RequestSpec{2, &model, 0.2});  // bumps #1 (same class, older)
  const auto records = service.run();
  EXPECT_EQ(records[1].outcome, RequestOutcome::kDropped);
  EXPECT_EQ(records[2].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(service.stats().dropped, 1u);
}

TEST(Service, ExpiredPendingDroppedInsteadOfDispatched) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ServiceOptions options;
  options.max_in_flight = 1;
  options.drop_expired_pending = true;
  InferenceService service(cluster, strategy, 0, options);
  service.submit(RequestSpec{0, &model, 0.0});
  RequestSpec hopeless{1, &model, 0.1};
  hopeless.deadline_s = 0.5;  // expires while request 0 runs until t=1
  service.submit(hopeless);
  const auto records = service.run();
  EXPECT_EQ(records[1].outcome, RequestOutcome::kDropped);
  EXPECT_DOUBLE_EQ(records[1].flops, 0.0);   // never executed
  EXPECT_DOUBLE_EQ(records[1].finish_s, 1.0);  // dropped when capacity freed
  EXPECT_EQ(service.stats().dropped, 1u);
}

TEST(Service, DeadlineMissRecordedForLateCompletion) {
  ModelSet models;
  const dnn::DnnGraph& model = models.graph(ModelId::kEfficientNetB0);
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  InferenceService service(cluster, strategy, 0);
  RequestSpec late{0, &model, 0.0, QosClass::kStandard, 0.25};
  service.submit(late);
  const auto records = service.run();
  EXPECT_EQ(records[0].outcome, RequestOutcome::kDeadlineMiss);
  EXPECT_DOUBLE_EQ(records[0].finish_s, 1.0);  // still ran to completion
  EXPECT_EQ(service.stats().deadline_misses, 1u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(PoissonArrivalsSource, DeterministicSortedAndBounded) {
  ModelSet models;
  PoissonArrivals::Options options;
  options.rate_hz = 20.0;
  options.count = 50;
  options.seed = 9;
  options.relative_deadline_s = 0.5;
  PoissonArrivals a(models, {ModelId::kEfficientNetB0, ModelId::kVgg19}, options);
  PoissonArrivals b(models, {ModelId::kEfficientNetB0, ModelId::kVgg19}, options);
  std::vector<RequestSpec> stream;
  while (auto spec = a.next(0.0)) stream.push_back(*spec);
  EXPECT_EQ(stream.size(), 50u);
  EXPECT_FALSE(a.next(0.0).has_value());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto twin = b.next(0.0);
    ASSERT_TRUE(twin.has_value());
    EXPECT_EQ(stream[i].arrival_s, twin->arrival_s);
    EXPECT_EQ(stream[i].id, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(stream[i].deadline_s, stream[i].arrival_s + 0.5);
    if (i > 0) EXPECT_GE(stream[i].arrival_s, stream[i - 1].arrival_s);
  }
  // Mean inter-arrival ~ 1/rate.
  const double horizon = stream.back().arrival_s - stream.front().arrival_s;
  EXPECT_NEAR(horizon / 49.0, 1.0 / 20.0, 0.03);
}

TEST(PoissonArrivalsSource, DrivesServiceEndToEnd) {
  ModelSet models;
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.01);
  InferenceService service(cluster, strategy, 0);
  PoissonArrivals::Options options;
  options.rate_hz = 50.0;
  options.count = 30;
  PoissonArrivals arrivals(models, {ModelId::kEfficientNetB0}, options);
  service.attach(&arrivals);
  const auto records = service.run();
  ASSERT_EQ(records.size(), 30u);
  for (const auto& r : records) EXPECT_EQ(r.outcome, RequestOutcome::kCompleted);
}

TEST(ClosedLoopClientsSource, ConcurrencyNeverExceedsClientPool) {
  ModelSet models;
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  InferenceService service(cluster, strategy, 0);
  ClosedLoopClients::Options options;
  options.clients = 3;
  options.requests_per_client = 5;
  options.think_s = 0.05;
  ClosedLoopClients clients(models, {ModelId::kEfficientNetB0}, options);
  service.attach(&clients);
  const auto records = service.run();
  ASSERT_EQ(records.size(), 15u);
  EXPECT_EQ(clients.issued(), 15);
  EXPECT_LE(service.stats().peak_in_flight, 3u);
  std::set<int> ids;
  for (const auto& r : records) {
    EXPECT_EQ(r.outcome, RequestOutcome::kCompleted);
    ids.insert(r.id);
  }
  EXPECT_EQ(ids.size(), 15u);
  // Closed loop: a client's next request arrives only after its previous
  // one finished plus think time.
  std::vector<RequestRecord> by_arrival = records;
  std::sort(by_arrival.begin(), by_arrival.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.arrival_s < b.arrival_s;
            });
  // With 3 clients and 0.1 s service on one FIFO processor + 0.05 s think,
  // offered load tracks completions instead of piling up: the queue the
  // strategy sees stays below the pool size.
  EXPECT_LE(service.stats().peak_pending, 0u);
}

TEST(ClosedLoopClientsSource, TerminalOutcomesReleaseClients) {
  // Shed requests must free their client too, or the pool deadlocks: three
  // clients race for one execution slot and one pending seat, so one
  // client's stream is rejected wholesale while the other two make
  // progress.
  ModelSet models;
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(1.0);
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_pending = 1;
  InferenceService service(cluster, strategy, 0, options);
  ClosedLoopClients::Options pool;
  pool.clients = 3;
  pool.requests_per_client = 3;
  ClosedLoopClients clients(models, {ModelId::kEfficientNetB0}, pool);
  service.attach(&clients);
  const auto records = service.run();
  // All 9 requests reach a terminal state; none is stuck pending.
  EXPECT_EQ(records.size(), 9u);
  EXPECT_EQ(service.stats().completed + service.stats().rejected + service.stats().dropped +
                service.stats().deadline_misses,
            9u);
  EXPECT_GT(service.stats().rejected, 0u);
  EXPECT_GT(service.stats().completed, 0u);
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_EQ(clients.issued(), 9);
}

TEST(Service, SubmitRejectsNullModel) {
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  InferenceService service(cluster, strategy, 0);
  EXPECT_THROW(service.submit(RequestSpec{0, nullptr, 0.0}), std::invalid_argument);
}

TEST(Service, SharedEngineAccumulatesTraces) {
  ModelSet models;
  Cluster cluster(platform::paper_cluster(2));
  FixedStrategy strategy(0.1);
  ExecutionEngine engine(cluster, strategy, 0);
  engine.set_trace_capacity(1);
  InferenceService service(engine);
  service.submit(RequestSpec{0, &models.graph(ModelId::kEfficientNetB0), 0.0});
  service.submit(RequestSpec{1, &models.graph(ModelId::kEfficientNetB0), 0.0});
  service.run();
  EXPECT_EQ(service.traces().size(), 1u);  // capacity respected via the engine
  EXPECT_EQ(&service.engine(), &engine);
}

}  // namespace
}  // namespace hidp::runtime
